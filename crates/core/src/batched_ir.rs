//! Batched DP-IR: many retrievals, one round trip.
//!
//! The paper's motivating deployments ("large-scale storage infrastructure
//! with highly frequent access requests", Section 1) rarely issue queries
//! one at a time. This module extends Algorithm 1 to a batch of `m`
//! queries: the client samples the `m` download sets *independently*, then
//! issues their **union** to the server in a single round trip.
//!
//! Two properties make this more than a convenience wrapper:
//!
//! * **Privacy is unchanged.** Definition 2.1's adjacency changes a single
//!   query; only that query's download set is affected (the other `m − 1`
//!   sets are sampled independently of it), and the union is
//!   post-processing, so the batch transcript is `ε`-DP with the *same*
//!   `ε = ln((1 − α)n/(αK) + 1)` as a single query — batching is free
//!   privacy-wise.
//! * **Bandwidth sublinearity.** Duplicate decoys collapse: the union's
//!   expected size is `n·(1 − (1 − K/n)^m) ≤ m·K`, with real savings once
//!   `m·K` approaches `n` — and the whole batch costs one round trip
//!   instead of `m`.

use std::collections::BTreeSet;

use dps_crypto::aead::{address_aad, AeadCipher};
use dps_crypto::{ChaChaRng, AEAD_OVERHEAD};

use crate::dp_ir::{DpIrConfig, DpIrError};
use dps_server::{batch_crypto, SimServer, Storage, WorkerPool};

/// A batch's results paired with its union download set (the transcript).
pub type BatchOutcome = (Vec<Option<Vec<u8>>>, BTreeSet<usize>);

/// Key and layout of a sealed-at-rest record store.
#[derive(Debug)]
struct SealedStore {
    cipher: AeadCipher,
    /// Uniform sealed-cell length (`record_len + AEAD_OVERHEAD`).
    ct_stride: usize,
}

/// A stateless batched DP-IR client bound to a server storing public
/// records — or, with [`BatchedDpIr::setup_sealed`], records sealed at
/// rest under the client's AEAD key with each cell's address as
/// associated data.
///
/// Sealing changes nothing about the privacy argument (the transcript is
/// still exactly the union download set), but it adds confidentiality and
/// tamper/swap detection against the storage backend. Batch opens run
/// through [`dps_server::batch_crypto`] — the wide 4-lane AEAD core per
/// chunk, chunks optionally fanned across a [`WorkerPool`]
/// ([`BatchedDpIr::with_pool`], sequential/inline by default).
#[derive(Debug)]
pub struct BatchedDpIr<S: Storage = SimServer> {
    config: DpIrConfig,
    server: S,
    /// `Some` when records are sealed at rest (AEAD under address AAD).
    sealed: Option<SealedStore>,
    /// Worker pool for the batch open phase (sequential by default).
    pool: WorkerPool,
    /// Reusable flat scratch for the needed cells' ciphertexts.
    ct_scratch: Vec<u8>,
    /// Reusable flat scratch for the opened plaintexts.
    pt_scratch: Vec<u8>,
}

impl<S: Storage> BatchedDpIr<S> {
    /// Stores the public database on the server (no secrets, like
    /// [`crate::dp_ir::DpIr::setup`]).
    pub fn setup(config: DpIrConfig, blocks: &[Vec<u8>], mut server: S) -> Result<Self, DpIrError> {
        if blocks.len() != config.n {
            return Err(DpIrError::InvalidConfig(format!(
                "expected {} blocks, got {}",
                config.n,
                blocks.len()
            )));
        }
        server.init(blocks.to_vec());
        Ok(Self {
            config,
            server,
            sealed: None,
            pool: WorkerPool::single(),
            ct_scratch: Vec::new(),
            pt_scratch: Vec::new(),
        })
    }

    /// Like [`BatchedDpIr::setup`], but seals every record onto the server
    /// under a fresh AEAD key with [`address_aad`]`(i, 0)` bound to cell
    /// `i`, so the backend holds only ciphertext and any moved or
    /// corrupted cell fails authentication at query time. Requires
    /// uniform record sizes (the batch open path works on equal strides);
    /// the sealing itself runs through the wide batch core.
    pub fn setup_sealed(
        config: DpIrConfig,
        blocks: &[Vec<u8>],
        mut server: S,
        rng: &mut ChaChaRng,
    ) -> Result<Self, DpIrError> {
        if blocks.len() != config.n {
            return Err(DpIrError::InvalidConfig(format!(
                "expected {} blocks, got {}",
                config.n,
                blocks.len()
            )));
        }
        let record_len = blocks.first().map_or(0, Vec::len);
        if blocks.iter().any(|b| b.len() != record_len) {
            return Err(DpIrError::InvalidConfig(
                "sealed stores require uniform record sizes".into(),
            ));
        }
        let cipher = AeadCipher::generate(rng);
        let nonces = rng.draw_nonces(blocks.len());
        let aads: Vec<[u8; 16]> = (0..blocks.len()).map(|i| address_aad(i, 0)).collect();
        let flat_pt: Vec<u8> = blocks.iter().flatten().copied().collect();
        let ct_stride = record_len + AEAD_OVERHEAD;
        let mut flat_ct = vec![0u8; blocks.len() * ct_stride];
        batch_crypto::seal_batch_strided(
            &WorkerPool::single(),
            &cipher,
            &nonces,
            &aads,
            &flat_pt,
            &mut flat_ct,
        );
        server.init(flat_ct.chunks(ct_stride).map(<[u8]>::to_vec).collect());
        Ok(Self {
            config,
            server,
            sealed: Some(SealedStore { cipher, ct_stride }),
            pool: WorkerPool::single(),
            ct_scratch: Vec::new(),
            pt_scratch: Vec::new(),
        })
    }

    /// Sets the worker pool that fans the batch open of a query's needed
    /// cells across threads (sealed stores only; plaintext stores do no
    /// crypto). The default is sequential/inline; results are identical
    /// for every width.
    pub fn with_pool(mut self, pool: WorkerPool) -> Self {
        self.pool = pool;
        self
    }

    /// True when records are sealed at rest.
    pub fn is_sealed(&self) -> bool {
        self.sealed.is_some()
    }

    /// The configuration in force.
    pub fn config(&self) -> DpIrConfig {
        self.config
    }

    /// Server cost counters.
    pub fn server_stats(&self) -> dps_server::CostStats {
        self.server.stats()
    }

    /// Mutable access to the underlying server (transcript control).
    pub fn server_mut(&mut self) -> &mut S {
        &mut self.server
    }

    /// Expected union size for a batch of `m`:
    /// `n·(1 − (1 − K/n)^m)` — the dedup-savings curve experiments plot.
    pub fn expected_union_size(&self, m: usize) -> f64 {
        let n = self.config.n as f64;
        let k = self.config.k as f64;
        n * (1.0 - (1.0 - k / n).powi(m as i32))
    }

    /// Samples the per-query download sets and their union, without
    /// touching the server (exposed for the privacy auditor).
    ///
    /// Returns `(union, successes)` where `successes[j]` says whether query
    /// `j` included its real record (the `r > α` branch of Algorithm 1).
    pub fn sample_batch(
        &self,
        indices: &[usize],
        rng: &mut ChaChaRng,
    ) -> (BTreeSet<usize>, Vec<bool>) {
        let mut union = BTreeSet::new();
        let mut successes = Vec::with_capacity(indices.len());
        for &index in indices {
            let mut set = BTreeSet::new();
            let success = !rng.gen_bool(self.config.alpha);
            if success {
                set.insert(index);
            }
            while set.len() < self.config.k {
                set.insert(rng.gen_index(self.config.n));
            }
            successes.push(success);
            union.extend(set);
        }
        (union, successes)
    }

    /// Answers a batch of queries in one round trip. `results[j]` is
    /// `Some(record)` with probability `1 − α` per query, independently.
    pub fn query_batch(
        &mut self,
        indices: &[usize],
        rng: &mut ChaChaRng,
    ) -> Result<Vec<Option<Vec<u8>>>, DpIrError> {
        Ok(self.query_batch_traced(indices, rng)?.0)
    }

    /// [`BatchedDpIr::query_batch`] returning the union download set — the
    /// batch transcript.
    pub fn query_batch_traced(
        &mut self,
        indices: &[usize],
        rng: &mut ChaChaRng,
    ) -> Result<BatchOutcome, DpIrError> {
        for &index in indices {
            if index >= self.config.n {
                return Err(DpIrError::IndexOutOfRange { index, n: self.config.n });
            }
        }
        let (union, successes) = self.sample_batch(indices, rng);
        let addrs: Vec<usize> = union.iter().copied().collect();
        // Count how many successful queries need each union position so
        // the zero-copy scan copies only those cells out of the server
        // arena, and each copy is moved (not re-cloned) into the last
        // result that needs it.
        let mut needed = vec![0u32; addrs.len()];
        for (&index, &success) in indices.iter().zip(&successes) {
            if success {
                let pos = addrs.binary_search(&index).expect("real index in union");
                needed[pos] += 1;
            }
        }
        let mut fetched: Vec<Option<Vec<u8>>> = vec![None; addrs.len()];
        match &self.sealed {
            None => {
                self.server
                    .read_batch_with(&addrs, |i, cell| {
                        if needed[i] > 0 {
                            fetched[i] = Some(cell.to_vec());
                        }
                    })
                    .map_err(DpIrError::Server)?;
            }
            Some(store) => {
                // Gather the needed sealed cells into a flat strided
                // scratch during the (still full-union) download, then
                // open them as one batch — per-cell address AADs, wide
                // AEAD core, chunks fanned across the pool.
                let needed_positions: Vec<usize> = needed
                    .iter()
                    .enumerate()
                    .filter(|&(_, &count)| count > 0)
                    .map(|(i, _)| i)
                    .collect();
                let ct_stride = store.ct_stride;
                let ct_scratch = &mut self.ct_scratch;
                ct_scratch.resize(needed_positions.len() * ct_stride, 0);
                let mut slot = 0;
                self.server
                    .read_batch_with(&addrs, |i, cell| {
                        if needed[i] > 0 {
                            ct_scratch[slot * ct_stride..slot * ct_stride + cell.len()]
                                .copy_from_slice(cell);
                            slot += 1;
                        }
                    })
                    .map_err(DpIrError::Server)?;
                let pt_stride = ct_stride - AEAD_OVERHEAD;
                let aads: Vec<[u8; 16]> = needed_positions
                    .iter()
                    .map(|&pos| address_aad(addrs[pos], 0))
                    .collect();
                self.pt_scratch.resize(needed_positions.len() * pt_stride, 0);
                batch_crypto::open_batch_strided(
                    &self.pool,
                    &store.cipher,
                    &aads,
                    &self.ct_scratch,
                    &mut self.pt_scratch,
                )
                .map_err(|e| DpIrError::Crypto(e.to_string()))?;
                for (k, &pos) in needed_positions.iter().enumerate() {
                    fetched[pos] =
                        Some(self.pt_scratch[k * pt_stride..(k + 1) * pt_stride].to_vec());
                }
            }
        }
        let results = indices
            .iter()
            .zip(&successes)
            .map(|(&index, &success)| {
                success.then(|| {
                    let pos = addrs.binary_search(&index).expect("real index in union");
                    needed[pos] -= 1;
                    if needed[pos] == 0 {
                        fetched[pos].take().expect("needed cell fetched")
                    } else {
                        // Duplicate successful queries for one index share
                        // the record; only non-final uses clone.
                        fetched[pos].clone().expect("needed cell fetched")
                    }
                })
            })
            .collect();
        Ok((results, union))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: usize, epsilon: f64, alpha: f64) -> BatchedDpIr {
        let blocks: Vec<Vec<u8>> = (0..n).map(|i| vec![(i % 251) as u8; 8]).collect();
        let config = DpIrConfig::with_epsilon(n, epsilon, alpha).unwrap();
        BatchedDpIr::setup(config, &blocks, SimServer::new()).unwrap()
    }

    #[test]
    fn batch_returns_correct_records() {
        let mut ir = build(128, 4.0, 0.1);
        let mut rng = ChaChaRng::seed_from_u64(1);
        let indices = [3usize, 77, 3, 120];
        for _ in 0..50 {
            let results = ir.query_batch(&indices, &mut rng).unwrap();
            for (j, result) in results.iter().enumerate() {
                if let Some(block) = result {
                    assert_eq!(*block, vec![(indices[j] % 251) as u8; 8], "slot {j}");
                }
            }
        }
    }

    #[test]
    fn whole_batch_is_one_round_trip() {
        let mut ir = build(256, 4.0, 0.1);
        let mut rng = ChaChaRng::seed_from_u64(2);
        let before = ir.server_stats();
        ir.query_batch(&[1, 2, 3, 4, 5, 6, 7, 8], &mut rng).unwrap();
        let diff = ir.server_stats().since(&before);
        assert_eq!(diff.round_trips, 1);
        assert_eq!(diff.uploads, 0);
    }

    #[test]
    fn union_dedup_saves_bandwidth() {
        // With m·K comparable to n, the union is measurably smaller than
        // m·K and tracks the analytic expectation.
        let mut ir = build(64, 2.0, 0.25); // K sizeable relative to n
        let k = ir.config().k;
        let m = 16;
        let mut rng = ChaChaRng::seed_from_u64(3);
        let indices: Vec<usize> = (0..m).collect();
        let trials = 300;
        let mut total = 0usize;
        for _ in 0..trials {
            let (_, union) = ir.query_batch_traced(&indices, &mut rng).unwrap();
            total += union.len();
        }
        let mean = total as f64 / trials as f64;
        let predicted = ir.expected_union_size(m);
        assert!(mean < (m * k) as f64 * 0.95, "no dedup savings: {mean} vs {}", m * k);
        assert!(
            (mean - predicted).abs() / predicted < 0.1,
            "union size {mean:.1} vs predicted {predicted:.1}"
        );
    }

    #[test]
    fn per_query_error_rate_is_alpha() {
        let mut ir = build(64, 4.0, 0.3);
        let mut rng = ChaChaRng::seed_from_u64(4);
        let trials = 1000;
        let mut errors = [0u32; 4];
        for _ in 0..trials {
            let results = ir.query_batch(&[0, 1, 2, 3], &mut rng).unwrap();
            for (j, r) in results.iter().enumerate() {
                if r.is_none() {
                    errors[j] += 1;
                }
            }
        }
        for (j, &e) in errors.iter().enumerate() {
            let rate = f64::from(e) / trials as f64;
            assert!((rate - 0.3).abs() < 0.05, "slot {j}: error rate {rate}");
        }
    }

    /// Adjacency locality: replacing one query re-randomizes only that
    /// query's contribution. We verify the *union* still contains each
    /// successful real index — the structural fact behind the ε-preservation
    /// argument.
    #[test]
    fn success_implies_membership_in_union() {
        let mut ir = build(64, 3.0, 0.3);
        let mut rng = ChaChaRng::seed_from_u64(5);
        for _ in 0..200 {
            let indices = [7usize, 21, 42];
            let (results, union) = ir.query_batch_traced(&indices, &mut rng).unwrap();
            for (j, r) in results.iter().enumerate() {
                if r.is_some() {
                    assert!(union.contains(&indices[j]));
                }
            }
        }
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut ir = build(16, 3.0, 0.1);
        let mut rng = ChaChaRng::seed_from_u64(6);
        let (results, union) = ir.query_batch_traced(&[], &mut rng).unwrap();
        assert!(results.is_empty());
        assert!(union.is_empty());
    }

    #[test]
    fn out_of_range_rejected_before_any_download() {
        let mut ir = build(16, 3.0, 0.1);
        let mut rng = ChaChaRng::seed_from_u64(7);
        let before = ir.server_stats();
        assert!(matches!(
            ir.query_batch(&[3, 99], &mut rng),
            Err(DpIrError::IndexOutOfRange { index: 99, n: 16 })
        ));
        assert_eq!(ir.server_stats().since(&before).downloads, 0);
    }

    fn build_sealed(n: usize, epsilon: f64, alpha: f64, seed: u64) -> (BatchedDpIr, ChaChaRng) {
        let blocks: Vec<Vec<u8>> = (0..n).map(|i| vec![(i % 251) as u8; 8]).collect();
        let config = DpIrConfig::with_epsilon(n, epsilon, alpha).unwrap();
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let ir = BatchedDpIr::setup_sealed(config, &blocks, SimServer::new(), &mut rng).unwrap();
        (ir, rng)
    }

    /// Sealed stores return the same records as plaintext stores and hold
    /// only ciphertext server-side.
    #[test]
    fn sealed_batch_returns_correct_records() {
        let (mut ir, mut rng) = build_sealed(128, 4.0, 0.1, 11);
        assert!(ir.is_sealed());
        // No stored cell equals any plaintext record (all sealed).
        let plain = vec![5u8; 8];
        assert!(ir.server_mut().read(5).unwrap() != plain);
        let indices = [5usize, 90, 5, 127];
        for _ in 0..30 {
            let results = ir.query_batch(&indices, &mut rng).unwrap();
            for (j, result) in results.iter().enumerate() {
                if let Some(block) = result {
                    assert_eq!(*block, vec![(indices[j] % 251) as u8; 8], "slot {j}");
                }
            }
        }
    }

    /// A pooled sealed client returns identical results from the same seed
    /// as the sequential default.
    #[test]
    fn sealed_pooled_matches_sequential() {
        let indices = [1usize, 17, 40, 17, 63];
        let run = |threads: usize| {
            let (ir, mut rng) = build_sealed(64, 3.0, 0.2, 7);
            let mut ir = ir.with_pool(dps_server::WorkerPool::new(threads));
            let mut all = Vec::new();
            for _ in 0..20 {
                all.push(ir.query_batch_traced(&indices, &mut rng).unwrap());
            }
            all
        };
        let sequential = run(1);
        for threads in [2usize, 4] {
            assert_eq!(run(threads), sequential, "threads = {threads}");
        }
    }

    /// A cell moved to a different address fails authentication (the
    /// address AAD binds position), surfacing as a Crypto error.
    #[test]
    fn sealed_detects_swapped_cells() {
        let (mut ir, mut rng) = build_sealed(32, 4.0, 0.05, 13);
        let a = ir.server_mut().read(3).unwrap();
        let b = ir.server_mut().read(9).unwrap();
        ir.server_mut().write(3, b).unwrap();
        ir.server_mut().write(9, a).unwrap();
        // Query index 3 repeatedly; as soon as a query succeeds (downloads
        // and opens the real record), the swap must be detected.
        let mut detected = false;
        for _ in 0..100 {
            match ir.query_batch(&[3], &mut rng) {
                Err(DpIrError::Crypto(_)) => {
                    detected = true;
                    break;
                }
                Ok(results) => assert!(results[0].is_none(), "swapped cell must not open"),
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(detected, "swap never detected across 100 queries");
    }

    /// Sealed setup rejects ragged record sizes.
    #[test]
    fn sealed_requires_uniform_records() {
        let blocks = vec![vec![1u8; 8], vec![2u8; 9]];
        let config = DpIrConfig::with_epsilon(2, 1.0, 0.3).unwrap();
        let mut rng = ChaChaRng::seed_from_u64(1);
        assert!(matches!(
            BatchedDpIr::<SimServer>::setup_sealed(config, &blocks, SimServer::new(), &mut rng),
            Err(DpIrError::InvalidConfig(_))
        ));
    }

    /// Sealing does not change the transcript shape: the union download
    /// set remains the whole observable access pattern.
    #[test]
    fn sealed_transcript_is_still_the_union() {
        let (mut ir, mut rng) = build_sealed(64, 3.0, 0.2, 21);
        ir.server_mut().start_recording();
        let (_, union) = ir.query_batch_traced(&[5, 40], &mut rng).unwrap();
        let transcript = ir.server_mut().take_transcript();
        let downloaded: std::collections::BTreeSet<usize> =
            transcript.downloaded_addresses().into_iter().collect();
        assert_eq!(downloaded, union);
    }

    #[test]
    fn expected_union_size_is_monotone_and_bounded() {
        let ir = build(128, 3.0, 0.1);
        let k = ir.config().k as f64;
        assert!((ir.expected_union_size(1) - k).abs() < k * 0.15);
        let mut prev = 0.0;
        for m in [1usize, 2, 4, 8, 16, 64] {
            let e = ir.expected_union_size(m);
            assert!(e >= prev, "must be monotone in m");
            assert!(e <= 128.0, "can never exceed n");
            prev = e;
        }
    }
}
