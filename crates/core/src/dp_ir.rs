//! DP-IR: differentially private information retrieval (Section 5,
//! Algorithm 1; Theorem 5.1).
//!
//! Client and server are both stateless; the database is public plaintext.
//! A query for record `i` downloads a set `T` of `K` records: with
//! probability `1 − α` the set contains `i` plus `K − 1` uniform decoys;
//! with probability `α` (the *error* case) all `K` records are uniform
//! decoys and the query returns nothing. Theorem 5.1: this is `ε`-DP with
//!
//! ```text
//! e^ε = (1 − α)·n / (α·K) + 1
//! ```
//!
//! and matches the Theorem 3.4 lower bound `Ω((1 − α − δ)·n / e^ε)` for all
//! `ε ≥ 0`. Fixing `ε = Θ(log n)` gives `K = O(1)`: constant overhead, the
//! best privacy constant-overhead schemes can have.

use std::collections::BTreeSet;

use dps_crypto::ChaChaRng;
use dps_server::{ServerError, SimServer, Storage};

/// Parameters of a DP-IR instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpIrConfig {
    /// Number of database records `n`.
    pub n: usize,
    /// Error probability `α ∈ (0, 1]`: the query fails (returns `None`)
    /// with this probability, independent of the query and data.
    pub alpha: f64,
    /// Number of records downloaded per query `K ∈ [1, n]`.
    pub k: usize,
}

/// Errors from DP-IR operations.
#[derive(Debug)]
pub enum DpIrError {
    /// Query index out of `[0, n)`.
    IndexOutOfRange {
        /// Requested index.
        index: usize,
        /// Database size.
        n: usize,
    },
    /// Parameters outside their valid domain.
    InvalidConfig(String),
    /// Underlying server failure.
    Server(ServerError),
    /// Sealed-cell authentication or decryption failure (sealed
    /// [`crate::batched_ir::BatchedDpIr`] stores only).
    Crypto(String),
}

impl std::fmt::Display for DpIrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DpIrError::IndexOutOfRange { index, n } => {
                write!(f, "index {index} out of range (n = {n})")
            }
            DpIrError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            DpIrError::Server(e) => write!(f, "server failure: {e}"),
            DpIrError::Crypto(msg) => write!(f, "sealed-cell crypto failure: {msg}"),
        }
    }
}

impl std::error::Error for DpIrError {}

impl From<ServerError> for DpIrError {
    fn from(e: ServerError) -> Self {
        DpIrError::Server(e)
    }
}

impl DpIrConfig {
    /// Builds a configuration achieving privacy budget `epsilon` with error
    /// probability `alpha`, using the download count of Theorem 5.1:
    /// `K = ⌈(1 − α)·n / (e^ε − 1)⌉`, clamped to `[1, n]`.
    pub fn with_epsilon(n: usize, epsilon: f64, alpha: f64) -> Result<Self, DpIrError> {
        if n == 0 {
            return Err(DpIrError::InvalidConfig("n must be positive".into()));
        }
        if !(0.0..=1.0).contains(&alpha) || alpha == 0.0 {
            return Err(DpIrError::InvalidConfig(format!("alpha must be in (0, 1], got {alpha}")));
        }
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(DpIrError::InvalidConfig(format!(
                "epsilon must be positive and finite, got {epsilon}"
            )));
        }
        let raw = (1.0 - alpha) * n as f64 / (epsilon.exp() - 1.0);
        let k = (raw.ceil() as usize).clamp(1, n);
        Ok(Self { n, alpha, k })
    }

    /// Builds a configuration with an explicit download count `k`.
    pub fn with_download_count(n: usize, k: usize, alpha: f64) -> Result<Self, DpIrError> {
        if n == 0 {
            return Err(DpIrError::InvalidConfig("n must be positive".into()));
        }
        if k == 0 || k > n {
            return Err(DpIrError::InvalidConfig(format!("k must be in [1, n = {n}], got {k}")));
        }
        if !(0.0..=1.0).contains(&alpha) || alpha == 0.0 {
            return Err(DpIrError::InvalidConfig(format!("alpha must be in (0, 1], got {alpha}")));
        }
        Ok(Self { n, alpha, k })
    }

    /// The analytic privacy budget of this configuration (proof of
    /// Theorem 5.1): `ε = ln((1 − α)·n / (α·K) + 1)`.
    pub fn epsilon(&self) -> f64 {
        ((1.0 - self.alpha) * self.n as f64 / (self.alpha * self.k as f64) + 1.0).ln()
    }
}

/// A stateless DP-IR client bound to a server storing public records.
#[derive(Debug)]
pub struct DpIr<S: Storage = SimServer> {
    config: DpIrConfig,
    server: S,
}

impl<S: Storage> DpIr<S> {
    /// Stores the public database on the server. DP-IR needs no setup
    /// secret: records are stored in the clear (retrieval privacy, not
    /// content privacy, is the goal — Section 5).
    pub fn setup(config: DpIrConfig, blocks: &[Vec<u8>], mut server: S) -> Result<Self, DpIrError> {
        if blocks.len() != config.n {
            return Err(DpIrError::InvalidConfig(format!(
                "expected {} blocks, got {}",
                config.n,
                blocks.len()
            )));
        }
        server.init(blocks.to_vec());
        Ok(Self { config, server })
    }

    /// The configuration in force.
    pub fn config(&self) -> DpIrConfig {
        self.config
    }

    /// Server cost counters.
    pub fn server_stats(&self) -> dps_server::CostStats {
        self.server.stats()
    }

    /// Mutable access to the underlying server (transcript control).
    pub fn server_mut(&mut self) -> &mut S {
        &mut self.server
    }

    /// Algorithm 1: build the download set for query `index`. Exposed for
    /// the privacy auditor, which needs the typed transcript without
    /// touching the server.
    pub fn sample_download_set(
        &self,
        index: usize,
        rng: &mut ChaChaRng,
    ) -> (BTreeSet<usize>, bool) {
        let mut t = BTreeSet::new();
        // r > alpha: the real record is included.
        let success = !rng.gen_bool(self.config.alpha);
        if success {
            t.insert(index);
        }
        while t.len() < self.config.k {
            // Uniform from [n] \ T by rejection (K ≤ n guarantees progress;
            // expected iterations ≤ n/(n-K+1)).
            let j = rng.gen_index(self.config.n);
            t.insert(j);
        }
        (t, success)
    }

    /// Queries record `index`. Returns `Some(record)` with probability
    /// `1 − α`, `None` (the error case) with probability `α`.
    pub fn query(
        &mut self,
        index: usize,
        rng: &mut ChaChaRng,
    ) -> Result<Option<Vec<u8>>, DpIrError> {
        Ok(self.query_traced(index, rng)?.0)
    }

    /// Like [`DpIr::query`] but also returns the download set — the random
    /// variable `IR(i)` of Section 3.2.
    pub fn query_traced(
        &mut self,
        index: usize,
        rng: &mut ChaChaRng,
    ) -> Result<(Option<Vec<u8>>, BTreeSet<usize>), DpIrError> {
        if index >= self.config.n {
            return Err(DpIrError::IndexOutOfRange { index, n: self.config.n });
        }
        let (set, success) = self.sample_download_set(index, rng);
        let addrs: Vec<usize> = set.iter().copied().collect();
        // Zero-copy download: only the real record (if this query succeeds)
        // is copied out of the server arena; decoys are read and discarded.
        let pos = success.then(|| addrs.binary_search(&index).expect("real index in set"));
        let mut record = Vec::new();
        self.server.read_batch_with(&addrs, |i, cell| {
            if Some(i) == pos {
                record.extend_from_slice(cell);
            }
        })?;
        Ok((success.then_some(record), set))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: usize, epsilon: f64, alpha: f64) -> DpIr {
        let blocks: Vec<Vec<u8>> = (0..n).map(|i| vec![(i % 251) as u8; 8]).collect();
        let config = DpIrConfig::with_epsilon(n, epsilon, alpha).unwrap();
        DpIr::setup(config, &blocks, SimServer::new()).unwrap()
    }

    #[test]
    fn k_formula_matches_theorem_5_1() {
        // K = ceil((1-α)n / (e^ε - 1)).
        let c = DpIrConfig::with_epsilon(1024, (1024f64).ln(), 0.1).unwrap();
        let expected = ((0.9_f64 * 1024.0) / (1024.0 - 1.0)).ceil() as usize;
        assert_eq!(c.k, expected);
        assert_eq!(c.k, 1, "ε = ln n gives constant K");
    }

    #[test]
    fn epsilon_shrinks_as_k_grows() {
        let n = 4096;
        let eps_small_k = DpIrConfig::with_download_count(n, 2, 0.1).unwrap().epsilon();
        let eps_big_k = DpIrConfig::with_download_count(n, 512, 0.1).unwrap().epsilon();
        assert!(eps_big_k < eps_small_k);
    }

    #[test]
    fn query_returns_record_on_success() {
        let mut ir = build(128, 5.0, 0.1);
        let mut rng = ChaChaRng::seed_from_u64(1);
        let mut successes = 0;
        for _ in 0..200 {
            if let Some(block) = ir.query(17, &mut rng).unwrap() {
                assert_eq!(block, vec![17u8; 8]);
                successes += 1;
            }
        }
        // ~90% success rate.
        assert!((150..=200).contains(&successes), "successes = {successes}");
    }

    #[test]
    fn error_rate_matches_alpha() {
        let mut ir = build(64, 4.0, 0.25);
        let mut rng = ChaChaRng::seed_from_u64(2);
        let trials = 4000;
        let errors = (0..trials)
            .filter(|_| ir.query(0, &mut rng).unwrap().is_none())
            .count();
        let rate = errors as f64 / trials as f64;
        assert!((rate - 0.25).abs() < 0.03, "error rate {rate}");
    }

    #[test]
    fn download_set_size_is_exactly_k() {
        let mut ir = build(256, 3.0, 0.1);
        let k = ir.config().k;
        assert!(k > 1);
        let mut rng = ChaChaRng::seed_from_u64(3);
        for _ in 0..100 {
            let (_, set) = ir.query_traced(9, &mut rng).unwrap();
            assert_eq!(set.len(), k);
        }
    }

    #[test]
    fn success_implies_real_index_in_set() {
        let mut ir = build(64, 3.0, 0.3);
        let mut rng = ChaChaRng::seed_from_u64(4);
        for _ in 0..300 {
            let (result, set) = ir.query_traced(11, &mut rng).unwrap();
            if result.is_some() {
                assert!(set.contains(&11));
            }
        }
    }

    #[test]
    fn per_query_cost_is_k_blocks_one_round_trip() {
        let mut ir = build(512, 4.0, 0.1);
        let k = ir.config().k as u64;
        let mut rng = ChaChaRng::seed_from_u64(5);
        let before = ir.server_stats();
        ir.query(0, &mut rng).unwrap();
        let diff = ir.server_stats().since(&before);
        assert_eq!(diff.downloads, k);
        assert_eq!(diff.round_trips, 1);
        assert_eq!(diff.uploads, 0, "DP-IR never uploads");
    }

    #[test]
    fn stateless_between_queries() {
        // Two queries for the same index are i.i.d.: no client state may
        // couple them. We check the download sets differ across calls
        // (overwhelmingly likely with K > 1 decoys from n = 512).
        let mut ir = build(512, 4.0, 0.1);
        let mut rng = ChaChaRng::seed_from_u64(6);
        let (_, s1) = ir.query_traced(0, &mut rng).unwrap();
        let (_, s2) = ir.query_traced(0, &mut rng).unwrap();
        assert_ne!(s1, s2);
    }

    #[test]
    fn config_validation() {
        assert!(DpIrConfig::with_epsilon(0, 1.0, 0.1).is_err());
        assert!(DpIrConfig::with_epsilon(8, 1.0, 0.0).is_err());
        assert!(DpIrConfig::with_epsilon(8, 1.0, 1.5).is_err());
        assert!(DpIrConfig::with_epsilon(8, -1.0, 0.1).is_err());
        assert!(DpIrConfig::with_download_count(8, 0, 0.1).is_err());
        assert!(DpIrConfig::with_download_count(8, 9, 0.1).is_err());
    }

    #[test]
    fn out_of_range_query_rejected() {
        let mut ir = build(16, 3.0, 0.1);
        let mut rng = ChaChaRng::seed_from_u64(7);
        assert!(matches!(
            ir.query(16, &mut rng),
            Err(DpIrError::IndexOutOfRange { index: 16, n: 16 })
        ));
    }

    #[test]
    fn small_epsilon_forces_large_k() {
        // ε -> 0 means K -> n: privacy at PIR cost, matching Theorem 3.4.
        let c = DpIrConfig::with_epsilon(100, 0.01, 0.1).unwrap();
        assert_eq!(c.k, 100);
    }

    /// Decoys are uniform: every record appears in the download set with
    /// roughly equal frequency when querying a fixed index.
    #[test]
    fn decoys_are_uniform() {
        let mut ir = build(32, 2.0, 0.1);
        let mut rng = ChaChaRng::seed_from_u64(8);
        let trials = 3000;
        let mut counts = [0u32; 32];
        for _ in 0..trials {
            let (_, set) = ir.query_traced(0, &mut rng).unwrap();
            for j in set {
                counts[j] += 1;
            }
        }
        // Index 0 is included almost always; others roughly uniformly.
        let others: Vec<u32> = counts[1..].to_vec();
        let mean = others.iter().sum::<u32>() as f64 / others.len() as f64;
        for (j, &c) in others.iter().enumerate() {
            let dev = (c as f64 - mean).abs() / mean;
            assert!(dev < 0.25, "record {}: count {c} vs mean {mean:.1}", j + 1);
        }
        assert!(counts[0] as f64 > mean, "queried record must dominate");
    }
}
