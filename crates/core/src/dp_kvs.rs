//! DP-KVS: differentially private key-value storage (Section 7;
//! Theorem 7.5).
//!
//! Keys come from a large universe `U` (here `u64`); lookups of absent keys
//! must return "not present" without revealing the miss. The construction
//! composes two pieces, exactly as Section 7.1 prescribes:
//!
//! 1. **Mapping scheme** — the oblivious two-choice forest of Section 7.2
//!    ([`dps_hashing::forest`]): `Π(u) = {F(k1,u), F(k2,u)}` picks two leaf
//!    buckets; a bucket's storage is its leaf-to-root path (`Θ(log log n)`
//!    nodes of `t` entries) plus a client-resident super root.
//! 2. **Bucketed DP-RAM** — [`crate::bucket_ram`] (Appendix E) stores the
//!    forest's nodes as equal-size encrypted cells and serves bucket
//!    queries with the two-phase stash dance of Section 6.
//!
//! Every KVS operation performs `2·k(n) = 4` bucket queries (two
//! retrievals, then two updates of which at most one is real — reads and
//! misses issue the same four), so the transcript shape is independent of
//! the op, the key, and whether it hits. Bandwidth is
//! `O(s(n)) = O(log log n)` node cells per operation; server storage is
//! `O(n)` cells; privacy is `ε = O(k(n)·log n) = O(log n)` with
//! `δ = negl(n)` from the mapping-scheme failure probability
//! (Theorem 7.1 + Theorem 7.2).

use dps_crypto::{ChaChaRng, HmacPrf, Prf};
use dps_hashing::forest::{choose_slot, ForestGeometry};
use dps_server::cells::{decode_bucket, encode_bucket, Slot};
use dps_server::{SimServer, Storage};

use crate::bucket_ram::{BucketRam, BucketRamError, BucketTrace};

/// Parameters of a DP-KVS instance.
#[derive(Debug, Clone)]
pub struct DpKvsConfig {
    /// Forest geometry (buckets, tree shape, node capacity, super root).
    pub geometry: ForestGeometry,
    /// Value payload size in bytes (all values are padded/validated to
    /// this, keeping cells equal-length).
    pub value_size: usize,
    /// Stash probability of the underlying bucketed DP-RAM.
    pub stash_probability: f64,
}

impl DpKvsConfig {
    /// Recommended parameters for capacity `n`: the Theorem 7.5 geometry
    /// plus the Theorem 6.1 stash probability over the bucket repertoire.
    pub fn recommended(n: usize, value_size: usize) -> Self {
        let geometry = ForestGeometry::recommended(n);
        let b = geometry.n_buckets.max(2) as f64;
        let p = (b.log2() * b.log2() / b).min(0.5);
        Self { geometry, value_size, stash_probability: p }
    }

    /// Node cell size in bytes (slot-encoded node).
    pub fn cell_size(&self) -> usize {
        dps_server::cells::encoded_len(self.geometry.node_capacity, self.value_size)
    }
}

/// Errors from DP-KVS operations.
#[derive(Debug)]
pub enum DpKvsError {
    /// A value of the wrong byte length was supplied.
    BadValueSize {
        /// Provided length.
        got: usize,
        /// Configured length.
        expected: usize,
    },
    /// The mapping scheme failed: both paths and the super root are full.
    /// Theorem 7.2: negligible probability under recommended geometry.
    CapacityExhausted,
    /// Underlying bucketed DP-RAM failure.
    Ram(BucketRamError),
    /// Corrupted node cell (failed slot decoding) — invariant violation.
    CorruptNode(String),
}

impl std::fmt::Display for DpKvsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DpKvsError::BadValueSize { got, expected } => {
                write!(f, "value has {got} bytes, expected {expected}")
            }
            DpKvsError::CapacityExhausted => {
                write!(f, "mapping scheme full (paths and super root exhausted)")
            }
            DpKvsError::Ram(e) => write!(f, "bucket RAM failure: {e}"),
            DpKvsError::CorruptNode(msg) => write!(f, "corrupt node cell: {msg}"),
        }
    }
}

impl std::error::Error for DpKvsError {}

impl From<BucketRamError> for DpKvsError {
    fn from(e: BucketRamError) -> Self {
        DpKvsError::Ram(e)
    }
}

/// The adversarial view of one KVS operation: four bucket-query traces
/// (two retrievals, two updates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KvsOpTrace {
    /// Retrieval of the first candidate bucket.
    pub retrieve_a: BucketTrace,
    /// Retrieval of the second candidate bucket.
    pub retrieve_b: BucketTrace,
    /// Update pass over the first candidate bucket.
    pub update_a: BucketTrace,
    /// Update pass over the second candidate bucket.
    pub update_b: BucketTrace,
}

/// What the single real update (if any) should do to a path.
#[derive(Debug, Clone)]
enum NodePlan {
    /// No change (fake update).
    Fake,
    /// Overwrite the value of `key` in the node at `height`.
    Update { height: usize, key: u64, value: Vec<u8> },
    /// Insert a new entry into the node at `height`.
    Insert { height: usize, key: u64, value: Vec<u8> },
    /// Remove `key` from the node at `height`.
    Remove { height: usize, key: u64 },
}

/// A DP-KVS client bound to a simulated server.
#[derive(Debug)]
pub struct DpKvs<S: Storage = SimServer> {
    config: DpKvsConfig,
    ram: BucketRam<S>,
    prf1: HmacPrf,
    prf2: HmacPrf,
    super_root: Vec<(u64, Vec<u8>)>,
    len: usize,
}

impl<S: Storage> DpKvs<S> {
    /// Sets up an empty DP-KVS: allocates the forest's node cells (all
    /// vacant), derives the two mapping PRFs, and initializes the bucketed
    /// DP-RAM over the path repertoire.
    pub fn setup(config: DpKvsConfig, server: S, rng: &mut ChaChaRng) -> Result<Self, DpKvsError> {
        let geometry = config.geometry;
        let empty_cell = encode_bucket(&[], geometry.node_capacity, config.value_size);
        let cells = vec![empty_cell; geometry.total_nodes()];
        let buckets: Vec<Vec<usize>> = (0..geometry.n_buckets)
            .map(|b| geometry.bucket_path(b))
            .collect();
        let ram = BucketRam::setup(cells, buckets, config.stash_probability, server, rng)?;

        let mut master_key = [0u8; 32];
        rng.fill_bytes(&mut master_key);
        let master = HmacPrf::new(&master_key);
        Ok(Self {
            prf1: master.derive(b"bucket-choice-1"),
            prf2: master.derive(b"bucket-choice-2"),
            config,
            ram,
            super_root: Vec::new(),
            len: 0,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &DpKvsConfig {
        &self.config
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current super-root load (client-side entries).
    pub fn super_root_load(&self) -> usize {
        self.super_root.len()
    }

    /// Client-side storage in cells: stashed bucket cells plus the super
    /// root (in node-cell equivalents).
    pub fn client_cells(&self) -> usize {
        self.ram.stashed_cell_count() + self.super_root.len()
    }

    /// Server cost counters.
    pub fn server_stats(&self) -> dps_server::CostStats {
        self.ram.server_stats()
    }

    /// Mutable access to the underlying server (transcript control).
    pub fn server_mut(&mut self) -> &mut S {
        self.ram.server_mut()
    }

    /// Node cells moved per operation: 4 bucket queries, each touching
    /// `3·depth` cells (2 downloads + 1 upload per phase-pair) —
    /// `O(log log n)` total.
    pub fn cells_per_op(&self) -> usize {
        4 * 3 * self.config.geometry.depth()
    }

    /// `Π(key)`: the two candidate buckets.
    pub fn buckets_for(&self, key: u64) -> (usize, usize) {
        let n = self.config.geometry.n_buckets as u64;
        let bytes = key.to_le_bytes();
        (self.prf1.eval_range(&bytes, n) as usize, self.prf2.eval_range(&bytes, n) as usize)
    }

    fn decode_path(&self, cells: &[Vec<u8>]) -> Result<Vec<Vec<Slot>>, DpKvsError> {
        cells
            .iter()
            .map(|c| {
                decode_bucket(c, self.config.geometry.node_capacity, self.config.value_size)
                    .map_err(|e| DpKvsError::CorruptNode(e.to_string()))
            })
            .collect()
    }

    /// Runs one fake-or-real update query over `bucket`, applying `plan`.
    fn run_update(
        &mut self,
        bucket: usize,
        plan: NodePlan,
        rng: &mut ChaChaRng,
    ) -> Result<BucketTrace, DpKvsError> {
        let capacity = self.config.geometry.node_capacity;
        let value_size = self.config.value_size;
        let mut failure: Option<String> = None;
        let (_, trace) = self.ram.query(
            bucket,
            |cells| {
                let apply = |cells: &mut Vec<Vec<u8>>,
                             height: usize,
                             f: &mut dyn FnMut(&mut Vec<Slot>)|
                 -> Result<(), String> {
                    let mut slots = decode_bucket(&cells[height], capacity, value_size)
                        .map_err(|e| e.to_string())?;
                    f(&mut slots);
                    cells[height] = encode_bucket(&slots, capacity, value_size);
                    Ok(())
                };
                let result = match plan {
                    NodePlan::Fake => Ok(()),
                    NodePlan::Update { height, key, value } => apply(cells, height, &mut |slots| {
                        if let Some(slot) = slots.iter_mut().find(|s| s.id == key) {
                            slot.payload = value.clone();
                        }
                    }),
                    NodePlan::Insert { height, key, value } => apply(cells, height, &mut |slots| {
                        slots.push(Slot { id: key, payload: value.clone() });
                    }),
                    NodePlan::Remove { height, key } => apply(cells, height, &mut |slots| {
                        slots.retain(|s| s.id != key);
                    }),
                };
                if let Err(e) = result {
                    failure = Some(e);
                }
            },
            rng,
        )?;
        match failure {
            Some(msg) => Err(DpKvsError::CorruptNode(msg)),
            None => Ok(trace),
        }
    }

    /// The shared four-query engine. `decide` inspects the two decoded
    /// paths (leaf-to-root) and the super root, and returns the plans for
    /// the two update queries plus the operation's result value.
    fn operate<R>(
        &mut self,
        key: u64,
        rng: &mut ChaChaRng,
        decide: impl FnOnce(
            &mut Self,
            usize,
            usize,
            &[Vec<Slot>],
            &[Vec<Slot>],
        ) -> Result<(NodePlan, NodePlan, R), DpKvsError>,
    ) -> Result<(R, KvsOpTrace), DpKvsError> {
        let (a, b) = self.buckets_for(key);

        // Retrieval pass: two bucket queries with identity updates.
        let (cells_a, retrieve_a) = self.ram.query(a, |_| {}, rng)?;
        let (cells_b, retrieve_b) = self.ram.query(b, |_| {}, rng)?;
        let path_a = self.decode_path(&cells_a)?;
        let path_b = self.decode_path(&cells_b)?;

        let (plan_a, plan_b, result) = decide(self, a, b, &path_a, &path_b)?;

        // Update pass: two more bucket queries; at most one plan is real.
        let update_a = self.run_update(a, plan_a, rng)?;
        let update_b = self.run_update(b, plan_b, rng)?;

        Ok((result, KvsOpTrace { retrieve_a, retrieve_b, update_a, update_b }))
    }

    fn find_in_path(path: &[Vec<Slot>], key: u64) -> Option<(usize, Vec<u8>)> {
        for (height, slots) in path.iter().enumerate() {
            if let Some(slot) = slots.iter().find(|s| s.id == key) {
                return Some((height, slot.payload.clone()));
            }
        }
        None
    }

    /// Looks up `key`. Hits and misses have identical transcript shapes.
    pub fn get(&mut self, key: u64, rng: &mut ChaChaRng) -> Result<Option<Vec<u8>>, DpKvsError> {
        Ok(self.get_traced(key, rng)?.0)
    }

    /// [`DpKvs::get`] with the typed adversarial trace.
    pub fn get_traced(
        &mut self,
        key: u64,
        rng: &mut ChaChaRng,
    ) -> Result<(Option<Vec<u8>>, KvsOpTrace), DpKvsError> {
        self.operate(key, rng, |kvs, _a, _b, path_a, path_b| {
            let found = Self::find_in_path(path_a, key)
                .or_else(|| Self::find_in_path(path_b, key))
                .map(|(_, v)| v)
                .or_else(|| {
                    kvs.super_root
                        .iter()
                        .find(|(k, _)| *k == key)
                        .map(|(_, v)| v.clone())
                });
            Ok((NodePlan::Fake, NodePlan::Fake, found))
        })
    }

    /// Inserts or updates `key`.
    pub fn put(&mut self, key: u64, value: Vec<u8>, rng: &mut ChaChaRng) -> Result<(), DpKvsError> {
        self.put_traced(key, value, rng).map(|_| ())
    }

    /// [`DpKvs::put`] with the typed adversarial trace.
    pub fn put_traced(
        &mut self,
        key: u64,
        value: Vec<u8>,
        rng: &mut ChaChaRng,
    ) -> Result<KvsOpTrace, DpKvsError> {
        if value.len() != self.config.value_size {
            return Err(DpKvsError::BadValueSize {
                got: value.len(),
                expected: self.config.value_size,
            });
        }
        let capacity = self.config.geometry.node_capacity;
        let (_, trace) = self.operate(key, rng, move |kvs, _a, _b, path_a, path_b| {
            // Existing key: in-place update wherever it lives.
            if let Some((height, _)) = Self::find_in_path(path_a, key) {
                return Ok((NodePlan::Update { height, key, value }, NodePlan::Fake, ()));
            }
            if let Some((height, _)) = Self::find_in_path(path_b, key) {
                return Ok((NodePlan::Fake, NodePlan::Update { height, key, value }, ()));
            }
            if let Some(entry) = kvs.super_root.iter_mut().find(|(k, _)| *k == key) {
                entry.1 = value;
                return Ok((NodePlan::Fake, NodePlan::Fake, ()));
            }
            // New key: the storing algorithm S (shared with the in-memory
            // forest via `choose_slot`).
            let loads_a: Vec<usize> = path_a.iter().map(Vec::len).collect();
            let loads_b: Vec<usize> = path_b.iter().map(Vec::len).collect();
            match choose_slot(&loads_a, &loads_b, capacity) {
                Some((0, height)) => {
                    kvs.len += 1;
                    Ok((NodePlan::Insert { height, key, value }, NodePlan::Fake, ()))
                }
                Some((_, height)) => {
                    kvs.len += 1;
                    Ok((NodePlan::Fake, NodePlan::Insert { height, key, value }, ()))
                }
                None => {
                    if kvs.super_root.len() < kvs.config.geometry.super_root_capacity {
                        kvs.super_root.push((key, value));
                        kvs.len += 1;
                        Ok((NodePlan::Fake, NodePlan::Fake, ()))
                    } else {
                        Err(DpKvsError::CapacityExhausted)
                    }
                }
            }
        })?;
        Ok(trace)
    }

    /// Removes `key`, returning its value (an extension beyond the paper's
    /// read/overwrite interface; same four-query transcript shape).
    pub fn remove(&mut self, key: u64, rng: &mut ChaChaRng) -> Result<Option<Vec<u8>>, DpKvsError> {
        let (result, _) = self.operate(key, rng, |kvs, _a, _b, path_a, path_b| {
            if let Some((height, value)) = Self::find_in_path(path_a, key) {
                kvs.len -= 1;
                return Ok((NodePlan::Remove { height, key }, NodePlan::Fake, Some(value)));
            }
            if let Some((height, value)) = Self::find_in_path(path_b, key) {
                kvs.len -= 1;
                return Ok((NodePlan::Fake, NodePlan::Remove { height, key }, Some(value)));
            }
            if let Some(pos) = kvs.super_root.iter().position(|(k, _)| *k == key) {
                kvs.len -= 1;
                let (_, value) = kvs.super_root.swap_remove(pos);
                return Ok((NodePlan::Fake, NodePlan::Fake, Some(value)));
            }
            Ok((NodePlan::Fake, NodePlan::Fake, None))
        })?;
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: usize, seed: u64) -> (DpKvs, ChaChaRng) {
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let kvs = DpKvs::setup(DpKvsConfig::recommended(n, 8), SimServer::new(), &mut rng).unwrap();
        (kvs, rng)
    }

    #[test]
    fn put_get_round_trip() {
        let (mut kvs, mut rng) = build(64, 1);
        kvs.put(0xfeed_f00d, vec![7u8; 8], &mut rng).unwrap();
        assert_eq!(kvs.get(0xfeed_f00d, &mut rng).unwrap(), Some(vec![7u8; 8]));
        assert_eq!(kvs.len(), 1);
    }

    #[test]
    fn missing_key_returns_none() {
        let (mut kvs, mut rng) = build(64, 2);
        assert_eq!(kvs.get(42, &mut rng).unwrap(), None);
    }

    #[test]
    fn update_in_place() {
        let (mut kvs, mut rng) = build(64, 3);
        kvs.put(5, vec![1u8; 8], &mut rng).unwrap();
        kvs.put(5, vec![2u8; 8], &mut rng).unwrap();
        assert_eq!(kvs.len(), 1);
        assert_eq!(kvs.get(5, &mut rng).unwrap(), Some(vec![2u8; 8]));
    }

    #[test]
    fn remove_round_trip() {
        let (mut kvs, mut rng) = build(64, 4);
        kvs.put(9, vec![3u8; 8], &mut rng).unwrap();
        assert_eq!(kvs.remove(9, &mut rng).unwrap(), Some(vec![3u8; 8]));
        assert_eq!(kvs.get(9, &mut rng).unwrap(), None);
        assert_eq!(kvs.remove(9, &mut rng).unwrap(), None);
        assert_eq!(kvs.len(), 0);
    }

    #[test]
    fn many_keys_round_trip() {
        let (mut kvs, mut rng) = build(128, 5);
        for k in 0..100u64 {
            kvs.put(k * 0x9e3779b9, vec![(k % 251) as u8; 8], &mut rng)
                .unwrap();
        }
        assert_eq!(kvs.len(), 100);
        for k in 0..100u64 {
            assert_eq!(
                kvs.get(k * 0x9e3779b9, &mut rng).unwrap(),
                Some(vec![(k % 251) as u8; 8]),
                "key {k}"
            );
        }
    }

    /// Random mixed workload against a HashMap reference, including misses.
    #[test]
    fn random_workload_matches_reference() {
        let (mut kvs, mut rng) = build(64, 6);
        let mut reference = std::collections::HashMap::new();
        let keys: Vec<u64> = (0..48).map(|i| i * 7 + 1).collect();
        for step in 0u32..400 {
            let key = keys[rng.gen_index(keys.len())];
            match rng.gen_index(4) {
                0 => {
                    let v = vec![(step % 256) as u8; 8];
                    kvs.put(key, v.clone(), &mut rng).unwrap();
                    reference.insert(key, v);
                }
                1 => {
                    assert_eq!(
                        kvs.remove(key, &mut rng).unwrap(),
                        reference.remove(&key),
                        "step {step}"
                    );
                }
                _ => {
                    assert_eq!(
                        kvs.get(key, &mut rng).unwrap(),
                        reference.get(&key).cloned(),
                        "step {step}"
                    );
                }
            }
            assert_eq!(kvs.len(), reference.len(), "step {step}");
        }
    }

    /// Transcript-shape invariance: hits, misses, puts and removes all
    /// issue exactly 4 bucket queries = 12 round trips, and move the same
    /// number of cells.
    #[test]
    fn op_cost_is_shape_invariant() {
        let (mut kvs, mut rng) = build(64, 7);
        kvs.put(1, vec![0u8; 8], &mut rng).unwrap();
        let depth = kvs.config().geometry.depth() as u64;
        let check = |kvs: &mut DpKvs, rng: &mut ChaChaRng, label: &str| {
            let before = kvs.server_stats();
            match label {
                "hit" => {
                    kvs.get(1, rng).unwrap();
                }
                "miss" => {
                    kvs.get(0xdead, rng).unwrap();
                }
                "put" => {
                    kvs.put(2, vec![1u8; 8], rng).unwrap();
                }
                _ => {
                    kvs.remove(0xbeef, rng).unwrap();
                }
            }
            let diff = kvs.server_stats().since(&before);
            assert_eq!(diff.downloads, 4 * 2 * depth, "{label}");
            assert_eq!(diff.uploads, 4 * depth, "{label}");
            assert_eq!(diff.round_trips, 12, "{label}");
        };
        check(&mut kvs, &mut rng, "hit");
        check(&mut kvs, &mut rng, "miss");
        check(&mut kvs, &mut rng, "put");
        check(&mut kvs, &mut rng, "removemiss");
    }

    #[test]
    fn value_size_is_enforced() {
        let (mut kvs, mut rng) = build(64, 8);
        assert!(matches!(
            kvs.put(1, vec![0u8; 5], &mut rng),
            Err(DpKvsError::BadValueSize { got: 5, expected: 8 })
        ));
    }

    #[test]
    fn fills_to_capacity_whp() {
        // Insert n keys into an n-bucket forest — Theorem 7.2 says this
        // succeeds whp with the recommended geometry.
        let n = 256;
        let (mut kvs, mut rng) = build(n, 9);
        for k in 0..n as u64 {
            kvs.put(k.wrapping_mul(0x2545f491_4f6cdd1d), vec![0u8; 8], &mut rng)
                .unwrap_or_else(|e| panic!("insert {k} failed: {e}"));
        }
        assert_eq!(kvs.len(), n);
        assert!(
            kvs.super_root_load() <= kvs.config().geometry.super_root_capacity,
            "super root over capacity"
        );
    }

    #[test]
    fn super_root_overflow_is_reported() {
        // Degenerate geometry to force overflow deterministically.
        let mut rng = ChaChaRng::seed_from_u64(10);
        let config = DpKvsConfig {
            geometry: dps_hashing::ForestGeometry {
                n_buckets: 2,
                leaves_per_tree: 2,
                node_capacity: 1,
                super_root_capacity: 1,
            },
            value_size: 4,
            stash_probability: 0.2,
        };
        let mut kvs = DpKvs::setup(config, SimServer::new(), &mut rng).unwrap();
        let mut full = false;
        for k in 0..32u64 {
            match kvs.put(k, vec![0u8; 4], &mut rng) {
                Ok(()) => {}
                Err(DpKvsError::CapacityExhausted) => {
                    full = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(full, "tiny forest must eventually overflow");
        // Everything stored before the overflow is still retrievable.
        for k in 0..kvs.len() as u64 {
            assert!(kvs.get(k, &mut rng).unwrap().is_some(), "key {k}");
        }
    }

    #[test]
    fn client_cells_stay_bounded() {
        let (mut kvs, mut rng) = build(128, 11);
        for k in 0..128u64 {
            kvs.put(k, vec![0u8; 8], &mut rng).unwrap();
        }
        for _ in 0..200 {
            let k = rng.gen_range(128);
            kvs.get(k, &mut rng).unwrap();
        }
        // Stashed cells ≈ p·b·depth in expectation; generous envelope.
        let depth = kvs.config().geometry.depth();
        let expected = kvs.config().stash_probability * 128.0 * depth as f64;
        assert!(
            (kvs.client_cells() as f64) < 6.0 * expected + kvs.super_root_load() as f64 + 20.0,
            "client cells {} too large (expected ~{expected})",
            kvs.client_cells()
        );
    }
}
