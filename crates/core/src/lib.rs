//! The constructions of *"What Storage Access Privacy is Achievable with
//! Small Overhead?"* (Patel, Persiano, Yeo — PODS 2019).
//!
//! Three differentially-private storage primitives, one insecure cautionary
//! tale, and a multi-server extension:
//!
//! * [`dp_ir`] — **DP-IR** (Section 5, Algorithm 1): stateless retrieval
//!   with error probability `α`, downloading
//!   `K = ⌈(1−α)·n / (e^ε − 1)⌉` blocks per query. Asymptotically optimal
//!   against the Theorem 3.4 lower bound; `O(1)` blocks at `ε = Θ(log n)`.
//! * [`strawman`] — the **insecure** construction of Section 4: query the
//!   real block always, every other block with probability `1/n`. Looks
//!   private, but is only `(ε, δ)`-DP with `δ ≥ (n−1)/n` — no privacy.
//!   Kept (clearly labeled) so the failure is reproducible.
//! * [`dp_ram`] — **DP-RAM** (Section 6, Algorithms 2–3): errorless
//!   stash-based reads and writes, exactly 2 downloads + 1 upload per
//!   query, `ε = O(log n)` with client stash `O(Φ(n))` whp.
//! * [`dp_ram_ro`] — the retrieval-only DP-RAM of the Section 6 discussion:
//!   no encryption, no overwrite phase; differentially private access to
//!   *public* data against computationally unbounded adversaries.
//! * [`bucket_ram`] — the Appendix E generalization: DP-RAM over a
//!   repertoire of (possibly overlapping) buckets of cells, with
//!   client-side overlap resolution.
//! * [`dp_kvs`] — **DP-KVS** (Section 7): the oblivious two-choice forest
//!   mapping scheme composed with bucketed DP-RAM; `O(log log n)` blocks
//!   per operation, `ε = O(log n)`, `O(n)` server storage.
//! * [`multi_server`] — multi-server DP-IR in the Appendix C model.
//! * [`batched_ir`] — an extension beyond the paper: `m` DP-IR queries
//!   answered by the union of their download sets in one round trip, with
//!   unchanged per-query `ε` and sublinear bandwidth.
//! * [`hardened_ram`] — DP-RAM upgraded from honest-but-curious to an
//!   actively malicious server: address-bound AEAD plus Merkle-verified
//!   storage, same transcript and overhead profile as Theorem 6.1.
//!
//! Every construction is generic over `dps_server::Storage`, so the same
//! code runs against the in-process simulators and against a real
//! network daemon through `dps_net::RemoteServer` — the loopback
//! equivalence suite in `dps_net` pins the two bit-identical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batched_ir;
pub mod bucket_ram;
pub mod dp_ir;
pub mod dp_kvs;
pub mod dp_ram;
pub mod dp_ram_ro;
pub mod hardened_ram;
pub mod multi_server;
pub mod strawman;

pub use batched_ir::BatchedDpIr;
pub use dp_ir::{DpIr, DpIrConfig};
pub use dp_kvs::{DpKvs, DpKvsConfig};
pub use dp_ram::{DpRam, DpRamConfig};
pub use hardened_ram::HardenedDpRam;
