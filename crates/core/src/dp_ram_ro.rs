//! Retrieval-only DP-RAM over *public* data — no encryption, no
//! computational assumptions (Section 6, "Discussion about encryption").
//!
//! When only retrievals are permitted, the overwrite phase of DP-RAM can be
//! skipped entirely and records can be stored in plaintext: the scheme then
//! provides differentially private access against computationally
//! *unbounded* adversaries. The stash is populated at setup (each record
//! independently with probability `p`) and never changes; a query for a
//! stashed record downloads a uniform decoy, otherwise it downloads the
//! record itself — one download, one round trip, statistical DP with
//! `ε = ln((1−p+p/n) / (p/n)) = O(log(n/p))`.
//!
//! This is the bridge between DP-IR (stateless, needs error) and DP-RAM
//! (stateful, errorless): client state is the second way around the
//! errorless lower bound of Theorem 3.3.

use std::collections::HashMap;

use dps_crypto::ChaChaRng;
use dps_server::{ServerError, SimServer, Storage};

/// A retrieval-only DP-RAM over plaintext public data.
#[derive(Debug)]
pub struct DpRamReadOnly<S: Storage = SimServer> {
    n: usize,
    stash_probability: f64,
    stash: HashMap<usize, Vec<u8>>,
    server: S,
}

impl<S: Storage> DpRamReadOnly<S> {
    /// Stores `blocks` in plaintext and stashes each independently with
    /// probability `p`.
    ///
    /// # Panics
    /// Panics if `blocks` is empty or `p ∉ [0, 1]`.
    pub fn setup(blocks: &[Vec<u8>], p: f64, mut server: S, rng: &mut ChaChaRng) -> Self {
        assert!(!blocks.is_empty(), "need at least one block");
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        server.init(blocks.to_vec());
        let mut stash = HashMap::new();
        for (i, b) in blocks.iter().enumerate() {
            if rng.gen_bool(p) {
                stash.insert(i, b.clone());
            }
        }
        Self { n: blocks.len(), stash_probability: p, stash, server }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Stash occupancy (client storage in blocks).
    pub fn stash_size(&self) -> usize {
        self.stash.len()
    }

    /// Server cost counters.
    pub fn server_stats(&self) -> dps_server::CostStats {
        self.server.stats()
    }

    /// The analytic pure-DP budget of the static-stash mechanism:
    /// `ε = ln(((1−p) + p/n) / (p/n))`. For `p = Φ(n)/n` this is
    /// `O(log(n² / Φ(n))) = O(log n)`.
    pub fn epsilon(&self) -> f64 {
        let n = self.n as f64;
        let p = self.stash_probability;
        if p == 0.0 {
            return f64::INFINITY;
        }
        (((1.0 - p) + p / n) / (p / n)).ln()
    }

    /// Retrieves record `index`, returning the value and the downloaded
    /// address (the adversary's whole per-query view).
    pub fn query_traced(
        &mut self,
        index: usize,
        rng: &mut ChaChaRng,
    ) -> Result<(Vec<u8>, usize), ServerError> {
        assert!(index < self.n, "index out of range");
        if let Some(v) = self.stash.get(&index) {
            // Decoy download, discarded without leaving the server arena.
            let decoy = rng.gen_index(self.n);
            self.server.read_batch_with(&[decoy], |_, _| {})?;
            Ok((v.clone(), decoy))
        } else {
            let mut out = Vec::new();
            self.server
                .read_batch_with(&[index], |_, cell| out.extend_from_slice(cell))?;
            Ok((out, index))
        }
    }

    /// Retrieves record `index`.
    pub fn read(&mut self, index: usize, rng: &mut ChaChaRng) -> Result<Vec<u8>, ServerError> {
        Ok(self.query_traced(index, rng)?.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: usize, p: f64, seed: u64) -> (DpRamReadOnly, ChaChaRng) {
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let blocks: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 8]).collect();
        let ram = DpRamReadOnly::setup(&blocks, p, SimServer::new(), &mut rng);
        (ram, rng)
    }

    #[test]
    fn always_correct() {
        let (mut ram, mut rng) = build(32, 0.5, 1);
        for _ in 0..200 {
            let i = rng.gen_index(32);
            assert_eq!(ram.read(i, &mut rng).unwrap(), vec![i as u8; 8]);
        }
    }

    #[test]
    fn one_download_one_round_trip() {
        let (mut ram, mut rng) = build(64, 0.3, 2);
        let before = ram.server_stats();
        ram.read(5, &mut rng).unwrap();
        let diff = ram.server_stats().since(&before);
        assert_eq!(diff.downloads, 1);
        assert_eq!(diff.uploads, 0);
        assert_eq!(diff.round_trips, 1);
    }

    #[test]
    fn no_uploads_ever_no_ciphertexts() {
        // Public data: the server stores exactly the plaintext blocks.
        let (mut ram, mut rng) = build(8, 0.5, 3);
        for _ in 0..50 {
            ram.read(rng.gen_index(8), &mut rng).unwrap();
        }
        assert_eq!(ram.server_stats().uploads, 0);
    }

    /// The mechanism's marginal: over fresh setups,
    /// Pr[view = q | query q] = (1-p) + p/n.
    #[test]
    fn view_marginal_matches_formula() {
        let n = 16;
        let p = 0.5;
        let trials = 4000u32;
        let mut self_hits = 0u32;
        for seed in 0..trials {
            let (mut ram, mut rng) = build(n, p, 100 + u64::from(seed));
            let (_, view) = ram.query_traced(3, &mut rng).unwrap();
            if view == 3 {
                self_hits += 1;
            }
        }
        let freq = f64::from(self_hits) / f64::from(trials);
        let predicted = (1.0 - p) + p / n as f64;
        assert!((freq - predicted).abs() < 0.03, "measured {freq:.4}, predicted {predicted:.4}");
    }

    #[test]
    fn epsilon_formula() {
        let (ram, _) = build(1024, 0.25, 4);
        // ε = ln((0.75 + 0.25/1024) / (0.25/1024)) ≈ ln(3073+..) ≈ 8.03
        let eps = ram.epsilon();
        assert!((eps - 8.03).abs() < 0.05, "epsilon = {eps}");
        let (ram0, _) = build(8, 0.0, 5);
        assert!(ram0.epsilon().is_infinite(), "p = 0 gives no privacy");
    }
}
