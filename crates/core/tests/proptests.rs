//! Property-based tests for the paper's constructions: correctness against
//! reference models under arbitrary operation programs, and structural
//! invariants of the typed transcripts.

use dps_core::bucket_ram::BucketRam;
use dps_core::dp_kvs::{DpKvs, DpKvsConfig};
use dps_core::dp_ram::{DpRam, DpRamConfig};
use dps_crypto::ChaChaRng;
use dps_server::SimServer;
use dps_workloads::Op;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// DP-RAM matches a plain array under arbitrary read/write programs,
    /// for arbitrary stash probabilities.
    #[test]
    fn dp_ram_matches_reference(
        ops in proptest::collection::vec((0usize..16, any::<bool>(), any::<u8>()), 1..80),
        p in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let n = 16;
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let blocks: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 4]).collect();
        let mut reference = blocks.clone();
        let mut ram = DpRam::setup(
            DpRamConfig { n, stash_probability: p },
            &blocks,
            SimServer::new(),
            &mut rng,
        ).unwrap();
        for (step, (i, is_write, byte)) in ops.into_iter().enumerate() {
            if is_write {
                let value = vec![byte; 4];
                ram.write(i, value.clone(), &mut rng).unwrap();
                reference[i] = value;
            } else {
                prop_assert_eq!(ram.read(i, &mut rng).unwrap(), reference[i].clone(), "step {}", step);
            }
        }
    }

    /// DP-RAM trace addresses are always in range and the overwrite-phase
    /// invariant holds: when the record is not re-stashed, the overwrite
    /// address equals the query.
    #[test]
    fn dp_ram_trace_invariants(
        queries in proptest::collection::vec(0usize..8, 1..40),
        seed in any::<u64>(),
    ) {
        let n = 8;
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let blocks: Vec<Vec<u8>> = (0..n).map(|_| vec![0u8; 4]).collect();
        let mut ram = DpRam::setup(
            DpRamConfig { n, stash_probability: 0.5 },
            &blocks,
            SimServer::new(),
            &mut rng,
        ).unwrap();
        for q in queries {
            let stashed_before = ram.stash_size();
            let (_, trace) = ram.query_traced(q, Op::Read, None, &mut rng).unwrap();
            prop_assert!(trace.download < n);
            prop_assert!(trace.overwrite < n);
            // If the stash did not grow and did not hold q before, both
            // phases must touch q itself (no decoys possible).
            let _ = stashed_before;
        }
    }

    /// DP-KVS matches a HashMap under arbitrary put/get/remove programs
    /// with keys from a large universe.
    #[test]
    fn dp_kvs_matches_reference(
        ops in proptest::collection::vec((0u8..3, 0u64..40), 1..60),
        seed in any::<u64>(),
    ) {
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let mut kvs = DpKvs::setup(
            DpKvsConfig::recommended(64, 4),
            SimServer::new(),
            &mut rng,
        ).unwrap();
        let mut model: std::collections::HashMap<u64, Vec<u8>> = std::collections::HashMap::new();
        for (step, (kind, key)) in ops.into_iter().enumerate() {
            let key = key.wrapping_mul(0x9e37_79b9_7f4a_7c15); // spread over U
            match kind {
                0 => {
                    let value = vec![(step % 256) as u8; 4];
                    kvs.put(key, value.clone(), &mut rng).unwrap();
                    model.insert(key, value);
                }
                1 => {
                    prop_assert_eq!(kvs.remove(key, &mut rng).unwrap(), model.remove(&key), "step {}", step);
                }
                _ => {
                    prop_assert_eq!(kvs.get(key, &mut rng).unwrap(), model.get(&key).cloned(), "step {}", step);
                }
            }
            prop_assert_eq!(kvs.len(), model.len(), "step {}", step);
        }
    }

    /// Bucketed DP-RAM with overlapping buckets preserves cell consistency
    /// under arbitrary update programs.
    #[test]
    fn bucket_ram_overlap_consistency(
        ops in proptest::collection::vec((0usize..4, 0usize..3, any::<u8>(), any::<bool>()), 1..50),
        p in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let cells: Vec<Vec<u8>> = (0..6).map(|i| vec![i as u8; 4]).collect();
        let buckets = vec![
            vec![0usize, 4, 5],
            vec![1, 4, 5],
            vec![2, 4, 5],
            vec![3, 4, 5],
        ];
        let mut model = cells.clone();
        let mut ram = BucketRam::setup(cells, buckets.clone(), p, SimServer::new(), &mut rng).unwrap();
        for (step, (b, pos, byte, is_write)) in ops.into_iter().enumerate() {
            if is_write {
                let value = vec![byte; 4];
                let v2 = value.clone();
                ram.query(b, move |c| c[pos] = v2, &mut rng).unwrap();
                model[buckets[b][pos]] = value;
            } else {
                let (contents, trace) = ram.query(b, |_| {}, &mut rng).unwrap();
                let expected: Vec<Vec<u8>> = buckets[b].iter().map(|&c| model[c].clone()).collect();
                prop_assert_eq!(contents, expected, "step {}", step);
                prop_assert!(trace.download < 4 && trace.overwrite < 4);
            }
        }
    }

    /// DP-IR download sets always have exactly K elements, contain the
    /// query iff the trial succeeded, and stay in range.
    #[test]
    fn dp_ir_download_set_invariants(
        query in 0usize..32,
        k in 1usize..32,
        alpha in 0.01f64..1.0,
        seed in any::<u64>(),
    ) {
        use dps_core::dp_ir::{DpIr, DpIrConfig};
        let n = 32;
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let blocks: Vec<Vec<u8>> = (0..n).map(|_| vec![0u8; 4]).collect();
        let config = DpIrConfig::with_download_count(n, k, alpha).unwrap();
        let ir = DpIr::setup(config, &blocks, SimServer::new()).unwrap();
        let (set, success) = ir.sample_download_set(query, &mut rng);
        prop_assert_eq!(set.len(), k);
        if success {
            prop_assert!(set.contains(&query));
        }
        prop_assert!(set.iter().all(|&x| x < n));
    }
}

/// The schemes run unmodified over the sharded concurrent backend: a
/// DP-RAM and a DP-KVS on a `ShardedServer` (4 shards, 2-wide pool)
/// behave exactly like their `SimServer` twins under the same seed —
/// same values returned, same costs charged.
#[test]
fn schemes_run_unmodified_on_sharded_server() {
    use dps_server::{ShardedServer, Storage, WorkerPool};

    let n = 64;
    let blocks: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 16]).collect();

    let mut rng_a = ChaChaRng::seed_from_u64(99);
    let mut ram_a =
        DpRam::setup(DpRamConfig::recommended(n), &blocks, SimServer::new(), &mut rng_a).unwrap();
    let mut rng_b = ChaChaRng::seed_from_u64(99);
    let sharded = ShardedServer::new(4).with_pool(WorkerPool::new(2));
    let mut ram_b =
        DpRam::setup(DpRamConfig::recommended(n), &blocks, sharded, &mut rng_b).unwrap();

    for step in 0..200 {
        let i = step % n;
        if step % 3 == 0 {
            let v = vec![(step % 251) as u8; 16];
            ram_a.write(i, v.clone(), &mut rng_a).unwrap();
            ram_b.write(i, v, &mut rng_b).unwrap();
        } else {
            assert_eq!(
                ram_a.read(i, &mut rng_a).unwrap(),
                ram_b.read(i, &mut rng_b).unwrap(),
                "step {step}"
            );
        }
    }
    assert_eq!(ram_a.server_stats(), ram_b.server_stats());
    assert_eq!(Storage::stats(ram_b.server_mut()).round_trips, ram_a.server_stats().round_trips);

    let mut rng_a = ChaChaRng::seed_from_u64(7);
    let mut kvs_a =
        DpKvs::setup(DpKvsConfig::recommended(64, 8), SimServer::new(), &mut rng_a).unwrap();
    let mut rng_b = ChaChaRng::seed_from_u64(7);
    let mut kvs_b = DpKvs::setup(
        DpKvsConfig::recommended(64, 8),
        ShardedServer::new(8).with_pool(WorkerPool::new(2)),
        &mut rng_b,
    )
    .unwrap();
    for k in 0u64..24 {
        kvs_a.put(k, vec![k as u8; 8], &mut rng_a).unwrap();
        kvs_b.put(k, vec![k as u8; 8], &mut rng_b).unwrap();
    }
    for k in 0u64..24 {
        assert_eq!(kvs_a.get(k, &mut rng_a).unwrap(), kvs_b.get(k, &mut rng_b).unwrap(), "key {k}");
    }
    assert_eq!(kvs_a.server_stats(), kvs_b.server_stats());
}
