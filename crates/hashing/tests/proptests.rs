//! Property-based tests for the hashing crate.

use dps_hashing::forest::{choose_slot, ForestGeometry, ObliviousForest};
use proptest::prelude::*;

fn arb_geometry() -> impl Strategy<Value = ForestGeometry> {
    (1usize..200, 1u32..4, 1usize..4, 1usize..32).prop_map(
        |(n, leaves_pow, capacity, super_cap)| ForestGeometry {
            n_buckets: n,
            leaves_per_tree: 1 << leaves_pow,
            node_capacity: capacity,
            super_root_capacity: super_cap,
        },
    )
}

proptest! {
    /// Paths always have `depth` nodes with strictly increasing heights and
    /// end at a tree root, for arbitrary geometry.
    #[test]
    fn bucket_paths_are_well_formed(g in arb_geometry(), bucket_frac in 0.0f64..1.0) {
        let bucket = ((g.n_buckets - 1) as f64 * bucket_frac) as usize;
        let path = g.bucket_path(bucket);
        prop_assert_eq!(path.len(), g.depth());
        for (h, &node) in path.iter().enumerate() {
            prop_assert!(node < g.total_nodes());
            prop_assert_eq!(g.node_height(node), h);
        }
        prop_assert_eq!(path.last().unwrap() % g.nodes_per_tree(), 0);
    }

    /// Two buckets in the same tree share their root; in different trees
    /// they share nothing above tree boundaries.
    #[test]
    fn path_sharing_respects_tree_boundaries(g in arb_geometry(), a_frac in 0.0f64..1.0, b_frac in 0.0f64..1.0) {
        let a = ((g.n_buckets - 1) as f64 * a_frac) as usize;
        let b = ((g.n_buckets - 1) as f64 * b_frac) as usize;
        let pa = g.bucket_path(a);
        let pb = g.bucket_path(b);
        let same_tree = a / g.leaves_per_tree == b / g.leaves_per_tree;
        prop_assert_eq!(pa.last() == pb.last(), same_tree);
    }

    /// choose_slot returns the lowest eligible height and an in-capacity
    /// node, or None iff both paths are saturated.
    #[test]
    fn choose_slot_is_lowest_fit(
        loads in proptest::collection::vec((0usize..5, 0usize..5), 1..8),
        capacity in 1usize..5,
    ) {
        let la: Vec<usize> = loads.iter().map(|&(a, _)| a.min(capacity)).collect();
        let lb: Vec<usize> = loads.iter().map(|&(_, b)| b.min(capacity)).collect();
        match choose_slot(&la, &lb, capacity) {
            Some((which, h)) => {
                let load = if which == 0 { la[h] } else { lb[h] };
                prop_assert!(load < capacity);
                // No lower height had space on either path.
                for lower in 0..h {
                    prop_assert!(la[lower] >= capacity && lb[lower] >= capacity);
                }
            }
            None => {
                prop_assert!(la.iter().zip(&lb).all(|(&a, &b)| a >= capacity && b >= capacity));
            }
        }
    }

    /// The forest agrees with a HashMap model under arbitrary programs of
    /// insert / remove / get (capacity failures tolerated and checked).
    #[test]
    fn forest_matches_hashmap_model(
        ops in proptest::collection::vec((0u8..3, 0u64..24), 1..120),
        seed in any::<u64>(),
    ) {
        let geometry = ForestGeometry {
            n_buckets: 32,
            leaves_per_tree: 8,
            node_capacity: 2,
            super_root_capacity: 64,
        };
        let mut forest = ObliviousForest::new(geometry, &seed.to_le_bytes());
        let mut model: std::collections::HashMap<u64, Vec<u8>> = std::collections::HashMap::new();
        for (step, (kind, key)) in ops.into_iter().enumerate() {
            match kind {
                0 => {
                    let value = vec![(step % 256) as u8];
                    // Capacity 32*... slots >> 24 keys: must never fail.
                    forest.insert(key, value.clone()).unwrap();
                    model.insert(key, value);
                }
                1 => {
                    prop_assert_eq!(forest.remove(key), model.remove(&key), "step {}", step);
                }
                _ => {
                    prop_assert_eq!(
                        forest.get(key).map(<[u8]>::to_vec),
                        model.get(&key).cloned(),
                        "step {}", step
                    );
                }
            }
            prop_assert_eq!(forest.len(), model.len());
        }
    }
}
