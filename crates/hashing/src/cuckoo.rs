//! Cuckoo hashing — the alternative mapping scheme the paper's §7 design
//! implicitly rejects.
//!
//! Cuckoo hashing also gives every key two PRF-chosen candidate locations,
//! but resolves collisions by *eviction chains* instead of load-balanced
//! placement: an insert may displace a resident key to its other location,
//! recursively, up to a bound. Lookups touch exactly 2 cells (better than
//! the forest's `Θ(log log n)` path), but:
//!
//! * utilization is capped near 50% for 2 hash functions (the forest packs
//!   ~1 key/cell at full load, E10);
//! * inserts are not O(1): eviction chains have unbounded tails and fail
//!   outright past the load threshold, which in an *oblivious* setting
//!   leaks the table's history through the chain length — the structural
//!   reason §7.2 builds on two-choice loads (whose placement decision is a
//!   pure function of visible path loads) rather than cuckoo chains;
//! * a client-side stash is still required for the failure tail.
//!
//! Experiment E22 measures both sides of that trade against the oblivious
//! forest. This implementation is the standard 2-table variant with a
//! bounded random-walk eviction and a stash.

use dps_crypto::{ChaChaRng, HmacPrf, Prf};

/// A stored entry.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry {
    key: u64,
    value: Vec<u8>,
}

/// Errors from cuckoo-table operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CuckooError {
    /// Insertion failed: the eviction walk exceeded its bound and the
    /// stash is full. The table is beyond its load threshold.
    Full,
}

impl std::fmt::Display for CuckooError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CuckooError::Full => {
                write!(f, "cuckoo table full (eviction bound and stash exhausted)")
            }
        }
    }
}

impl std::error::Error for CuckooError {}

/// A two-table cuckoo hash map with a bounded stash.
#[derive(Debug, Clone)]
pub struct CuckooTable {
    /// Two tables of `buckets_per_table` single-entry cells each.
    tables: [Vec<Option<Entry>>; 2],
    prf: [HmacPrf; 2],
    stash: Vec<Entry>,
    stash_capacity: usize,
    max_evictions: usize,
    len: usize,
    /// Longest eviction chain seen (the obliviousness-leak measure E22
    /// reports).
    max_chain: usize,
}

impl CuckooTable {
    /// Creates a table with `buckets_per_table` cells per table (total
    /// capacity `2·buckets_per_table` at 100% utilization, ~50% realistic)
    /// and a stash of `stash_capacity` entries.
    ///
    /// # Panics
    /// Panics if `buckets_per_table == 0`.
    pub fn new(buckets_per_table: usize, stash_capacity: usize, master_key: &[u8]) -> Self {
        assert!(buckets_per_table > 0, "need at least one bucket per table");
        let master = HmacPrf::new(master_key);
        Self {
            tables: [vec![None; buckets_per_table], vec![None; buckets_per_table]],
            prf: [master.derive(b"cuckoo-0"), master.derive(b"cuckoo-1")],
            stash: Vec::new(),
            stash_capacity,
            // 32 + log2 n is far past the whp bound for loads < 50%.
            max_evictions: 32 + buckets_per_table.next_power_of_two().trailing_zeros() as usize,
            len: 0,
            max_chain: 0,
        }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total server cells (both tables).
    pub fn server_cells(&self) -> usize {
        2 * self.tables[0].len()
    }

    /// Current stash occupancy.
    pub fn stash_len(&self) -> usize {
        self.stash.len()
    }

    /// Longest eviction chain any insert has triggered — the history leak
    /// an oblivious deployment would have to pad against.
    pub fn max_eviction_chain(&self) -> usize {
        self.max_chain
    }

    fn slot(&self, table: usize, key: u64) -> usize {
        self.prf[table].eval_range(&key.to_le_bytes(), self.tables[table].len() as u64) as usize
    }

    /// Looks up `key` — always exactly 2 cell probes (plus the stash).
    pub fn get(&self, key: u64) -> Option<&[u8]> {
        for table in 0..2 {
            let slot = self.slot(table, key);
            if let Some(e) = &self.tables[table][slot] {
                if e.key == key {
                    return Some(&e.value);
                }
            }
        }
        self.stash
            .iter()
            .find(|e| e.key == key)
            .map(|e| e.value.as_slice())
    }

    /// Inserts or updates `key`. Updates are in place; new keys may trigger
    /// an eviction walk of up to `max_evictions` displacements, then spill
    /// into the stash, then fail.
    pub fn insert(
        &mut self,
        key: u64,
        value: Vec<u8>,
        rng: &mut ChaChaRng,
    ) -> Result<(), CuckooError> {
        // In-place update paths.
        for table in 0..2 {
            let slot = self.slot(table, key);
            if let Some(e) = &mut self.tables[table][slot] {
                if e.key == key {
                    e.value = value;
                    return Ok(());
                }
            }
        }
        if let Some(e) = self.stash.iter_mut().find(|e| e.key == key) {
            e.value = value;
            return Ok(());
        }

        // A failed walk must park its final displaced entry in the stash
        // (otherwise a resident key would be lost). Guarantee that room
        // exists up front: with the stash already full, reject the new key
        // outright, leaving the table untouched.
        if self.stash.len() >= self.stash_capacity {
            return Err(CuckooError::Full);
        }

        // Random-walk eviction: start in a random table, displace on
        // collision, bounded walk.
        let mut entry = Entry { key, value };
        let mut table = rng.gen_index(2);
        let mut chain = 0usize;
        loop {
            let slot = self.slot(table, entry.key);
            match self.tables[table][slot].take() {
                None => {
                    self.tables[table][slot] = Some(entry);
                    self.len += 1;
                    self.max_chain = self.max_chain.max(chain);
                    return Ok(());
                }
                Some(displaced) => {
                    self.tables[table][slot] = Some(entry);
                    entry = displaced;
                    table = 1 - table;
                    chain += 1;
                    if chain > self.max_evictions {
                        // Park the walk's survivor (room checked above).
                        self.max_chain = self.max_chain.max(chain);
                        self.stash.push(entry);
                        self.len += 1;
                        return Ok(());
                    }
                }
            }
        }
    }

    /// Removes `key`, returning its value.
    pub fn remove(&mut self, key: u64) -> Option<Vec<u8>> {
        for table in 0..2 {
            let slot = self.slot(table, key);
            if self.tables[table][slot].as_ref().is_some_and(|e| e.key == key) {
                let e = self.tables[table][slot].take().expect("checked above");
                self.len -= 1;
                return Some(e.value);
            }
        }
        if let Some(pos) = self.stash.iter().position(|e| e.key == key) {
            self.len -= 1;
            return Some(self.stash.swap_remove(pos).value);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(buckets: usize) -> CuckooTable {
        CuckooTable::new(buckets, 8, b"cuckoo-test")
    }

    #[test]
    fn insert_get_round_trip() {
        let mut t = table(64);
        let mut rng = ChaChaRng::seed_from_u64(1);
        for k in 0..40u64 {
            t.insert(k, vec![k as u8; 4], &mut rng).unwrap();
        }
        assert_eq!(t.len(), 40);
        for k in 0..40u64 {
            assert_eq!(t.get(k), Some(vec![k as u8; 4].as_slice()), "key {k}");
        }
        assert_eq!(t.get(999), None);
    }

    #[test]
    fn insert_is_upsert() {
        let mut t = table(16);
        let mut rng = ChaChaRng::seed_from_u64(2);
        t.insert(5, vec![1], &mut rng).unwrap();
        t.insert(5, vec![2], &mut rng).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(5), Some([2u8].as_slice()));
    }

    #[test]
    fn remove_round_trip() {
        let mut t = table(16);
        let mut rng = ChaChaRng::seed_from_u64(3);
        t.insert(7, vec![9], &mut rng).unwrap();
        assert_eq!(t.remove(7), Some(vec![9]));
        assert_eq!(t.get(7), None);
        assert_eq!(t.remove(7), None);
        assert_eq!(t.len(), 0);
    }

    /// Below 50% load cuckoo hashing succeeds whp.
    #[test]
    fn half_load_succeeds() {
        let mut t = table(256); // 512 cells
        let mut rng = ChaChaRng::seed_from_u64(4);
        for k in 0..230u64 {
            t.insert(k.wrapping_mul(0x9e3779b97f4a7c15), vec![0u8; 4], &mut rng)
                .unwrap_or_else(|e| panic!("key {k}: {e}"));
        }
        assert_eq!(t.len(), 230);
    }

    /// Pushing toward full utilization eventually fails — the threshold the
    /// forest does not have (E10 fills n cells with n keys).
    #[test]
    fn overload_eventually_fails() {
        let mut t = CuckooTable::new(64, 2, b"overload"); // 128 cells, tiny stash
        let mut rng = ChaChaRng::seed_from_u64(5);
        let mut failed = false;
        for k in 0..128u64 {
            if t.insert(k, vec![0u8; 2], &mut rng).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "cuckoo must fail before 100% utilization");
        // Everything inserted before the failure is still retrievable.
        let mut found = 0;
        for k in 0..128u64 {
            if t.get(k).is_some() {
                found += 1;
            }
        }
        assert_eq!(found, t.len());
    }

    #[test]
    fn eviction_chains_are_tracked() {
        let mut t = table(32);
        let mut rng = ChaChaRng::seed_from_u64(6);
        for k in 0..28u64 {
            let _ = t.insert(k, vec![0u8; 2], &mut rng);
        }
        // At ~44% load some eviction almost surely happened.
        assert!(t.max_eviction_chain() >= 1, "no evictions at 44% load is implausible");
    }

    #[test]
    fn random_workload_matches_reference() {
        let mut t = table(128);
        let mut rng = ChaChaRng::seed_from_u64(7);
        let mut model = std::collections::HashMap::new();
        for step in 0u32..600 {
            let key = u64::from(step % 90);
            match step % 3 {
                0 => {
                    let v = vec![(step % 256) as u8; 4];
                    t.insert(key, v.clone(), &mut rng).unwrap();
                    model.insert(key, v);
                }
                1 => {
                    assert_eq!(t.remove(key), model.remove(&key), "step {step}");
                }
                _ => {
                    assert_eq!(t.get(key), model.get(&key).map(Vec::as_slice), "step {step}");
                }
            }
            assert_eq!(t.len(), model.len(), "step {step}");
        }
    }

    #[test]
    fn lookups_touch_exactly_two_cells() {
        // Structural rather than counted: get() only computes two slots.
        // Here we verify both candidate locations cover every stored key.
        let mut t = table(64);
        let mut rng = ChaChaRng::seed_from_u64(8);
        for k in 0..50u64 {
            t.insert(k, vec![1], &mut rng).unwrap();
        }
        for k in 0..50u64 {
            if t.stash_len() > 0 && t.stash.iter().any(|e| e.key == k) {
                continue;
            }
            let in_t0 = t.tables[0][t.slot(0, k)].as_ref().is_some_and(|e| e.key == k);
            let in_t1 = t.tables[1][t.slot(1, k)].as_ref().is_some_and(|e| e.key == k);
            assert!(in_t0 || in_t1, "key {k} not at either candidate");
        }
    }
}
