//! Classic balls-in-bins processes (Appendix A.1).
//!
//! Reproduces the separation motivating two-choice hashing: throwing `n`
//! balls into `n` bins uniformly yields max load `Θ(log n / log log n)`;
//! letting each ball pick the lighter of two random bins yields
//! `Θ(log log n)` (Theorem A.1, \[41\]).

use dps_crypto::ChaChaRng;

/// Throws `balls` balls into `bins` bins, one uniform choice each.
/// Returns the final load vector.
pub fn one_choice_loads(balls: usize, bins: usize, rng: &mut ChaChaRng) -> Vec<u32> {
    assert!(bins > 0);
    let mut loads = vec![0u32; bins];
    for _ in 0..balls {
        loads[rng.gen_index(bins)] += 1;
    }
    loads
}

/// Throws `balls` balls into `bins` bins; each ball picks two uniform bins
/// and lands in the lighter one (ties broken toward the first choice).
/// Returns the final load vector.
pub fn two_choice_loads(balls: usize, bins: usize, rng: &mut ChaChaRng) -> Vec<u32> {
    assert!(bins > 0);
    let mut loads = vec![0u32; bins];
    for _ in 0..balls {
        let a = rng.gen_index(bins);
        let b = rng.gen_index(bins);
        let pick = if loads[b] < loads[a] { b } else { a };
        loads[pick] += 1;
    }
    loads
}

/// `d`-choice generalization (each ball probes `d` uniform bins). The paper
/// notes `d >= 3` only improves the constant — measurable with this.
pub fn d_choice_loads(balls: usize, bins: usize, d: usize, rng: &mut ChaChaRng) -> Vec<u32> {
    assert!(bins > 0 && d > 0);
    let mut loads = vec![0u32; bins];
    for _ in 0..balls {
        let mut best = rng.gen_index(bins);
        for _ in 1..d {
            let candidate = rng.gen_index(bins);
            if loads[candidate] < loads[best] {
                best = candidate;
            }
        }
        loads[best] += 1;
    }
    loads
}

/// Maximum load of a load vector.
pub fn max_load(loads: &[u32]) -> u32 {
    loads.iter().copied().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_conserve_balls() {
        let mut rng = ChaChaRng::seed_from_u64(1);
        let one = one_choice_loads(1000, 100, &mut rng);
        assert_eq!(one.iter().sum::<u32>(), 1000);
        let two = two_choice_loads(1000, 100, &mut rng);
        assert_eq!(two.iter().sum::<u32>(), 1000);
        let three = d_choice_loads(1000, 100, 3, &mut rng);
        assert_eq!(three.iter().sum::<u32>(), 1000);
    }

    /// The headline separation at n = 2^14: two choices beat one by a
    /// clear margin on every seed.
    #[test]
    fn two_choices_beat_one() {
        let n = 1 << 14;
        for seed in 0..3 {
            let mut rng = ChaChaRng::seed_from_u64(seed);
            let one = max_load(&one_choice_loads(n, n, &mut rng));
            let two = max_load(&two_choice_loads(n, n, &mut rng));
            assert!(two < one, "seed {seed}: two-choice max load {two} not below one-choice {one}");
        }
    }

    /// Two-choice max load should be close to log2 log2 n + O(1):
    /// for n = 2^14, log2 log2 n ≈ 3.8, so anything <= 8 is in the regime.
    #[test]
    fn two_choice_max_load_is_loglog() {
        let n = 1 << 14;
        let mut rng = ChaChaRng::seed_from_u64(9);
        let two = max_load(&two_choice_loads(n, n, &mut rng));
        assert!(two <= 8, "two-choice max load {two} too large for n=2^14");
    }

    #[test]
    fn d_choice_matches_two_choice_regime() {
        let n = 1 << 12;
        let mut rng = ChaChaRng::seed_from_u64(11);
        let d3 = max_load(&d_choice_loads(n, n, 3, &mut rng));
        let d2 = max_load(&two_choice_loads(n, n, &mut rng));
        assert!(d3 <= d2 + 1, "3 choices should not be worse: {d3} vs {d2}");
    }

    #[test]
    fn single_bin_takes_everything() {
        let mut rng = ChaChaRng::seed_from_u64(13);
        assert_eq!(two_choice_loads(50, 1, &mut rng), vec![50]);
    }
}
