//! The `β_i` recursion of Theorem 7.2 / Lemma 7.3 as executable formulas.
//!
//! The proof tracks `H_i`, the number of *filled* nodes at height `i` of
//! the forest, and shows `H_i <= β_i` with high probability where
//!
//! ```text
//! β_0     = n / (e · 3^4)
//! β_{i+1} = (e / n) · β_i^2 · 2^{2(i+1)}
//! ```
//!
//! with closed form (Lemma 7.3)
//!
//! ```text
//! β_i = (n / e) · (2/3)^{2^{i+2}} · (1/2)^{2(i+2)}
//! ```
//!
//! The doubly-exponential decay of `β_i` is what makes the super root's
//! height `i* = Θ(log log n)` and its load `O(Φ(n))`.

/// `β_i` by the recursion.
pub fn beta_recursive(n: f64, i: u32) -> f64 {
    let mut beta = n / (std::f64::consts::E * 81.0);
    for level in 0..i {
        beta = (std::f64::consts::E / n) * beta * beta * 4f64.powi(level as i32 + 1);
    }
    beta
}

/// `β_i` by the closed form of Lemma 7.3.
pub fn beta_closed(n: f64, i: u32) -> f64 {
    let two_thirds_exp = 2f64.powi(i as i32 + 2); // 2^{i+2}
    (n / std::f64::consts::E)
        * (2.0f64 / 3.0).powf(two_thirds_exp)
        * 0.5f64.powi(2 * (i as i32 + 2))
}

/// The largest `i` with `β_i >= φ` — the height `i*` at which the proof
/// hands over from the recursion to a direct Chernoff argument. Returns
/// `None` if already `β_0 < φ`.
pub fn i_star(n: f64, phi: f64) -> Option<u32> {
    if beta_closed(n, 0) < phi {
        return None;
    }
    let mut i = 0;
    while beta_closed(n, i + 1) >= phi {
        i += 1;
        if i > 64 {
            break; // β decays doubly exponentially; unreachable in practice
        }
    }
    Some(i)
}

/// Chernoff tail bound of Theorem A.2: for `X ~ Bin(n, p)` with mean
/// `μ = np` and any `t >= μ`, `Pr[X >= t] <= (μ/t)^t · e^{t-μ}`.
pub fn chernoff_upper_tail(mu: f64, t: f64) -> f64 {
    assert!(t >= mu, "bound only valid for t >= mu");
    if mu == 0.0 {
        return if t > 0.0 { 0.0 } else { 1.0 };
    }
    ((mu / t).ln() * t + (t - mu)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_matches_recursion() {
        for n in [1e3, 1e5, 1e7] {
            for i in 0..6 {
                let r = beta_recursive(n, i);
                let c = beta_closed(n, i);
                let rel = if c.abs() > 0.0 { (r - c).abs() / c.abs() } else { (r - c).abs() };
                assert!(rel < 1e-9, "n={n} i={i}: recursive {r} vs closed {c}");
            }
        }
    }

    #[test]
    fn beta_decreases_with_height() {
        let n = 1e6;
        for i in 0..8 {
            assert!(beta_closed(n, i + 1) < beta_closed(n, i), "β must decrease at i={i}");
        }
    }

    #[test]
    fn beta_zero_matches_base_case() {
        let n = 81.0 * std::f64::consts::E;
        assert!((beta_closed(n, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn i_star_is_loglog_scale() {
        // For n = 2^20 and Φ = log^2 n ≈ 192, i* should be small (≤ ~5):
        // β decays doubly exponentially.
        let n = (1u64 << 20) as f64;
        let phi = (n.ln() / std::f64::consts::LN_2).powi(2);
        let i = i_star(n, phi).expect("β_0 >> Φ for this n");
        assert!(i <= 5, "i* = {i} too large");
        assert!(beta_closed(n, i) >= phi);
        assert!(beta_closed(n, i + 1) < phi);
    }

    #[test]
    fn i_star_none_for_tiny_n() {
        assert_eq!(i_star(10.0, 1e9), None);
    }

    #[test]
    fn chernoff_bound_sane() {
        // At t = e·μ the bound equals e^{-μ} (the form used in Lemma 7.4).
        let mu = 30.0;
        let bound = chernoff_upper_tail(mu, std::f64::consts::E * mu);
        assert!((bound.ln() + mu).abs() < 1e-9);
        // Monotone decreasing in t.
        assert!(chernoff_upper_tail(10.0, 40.0) < chernoff_upper_tail(10.0, 20.0));
        // Never exceeds 1 at t = mu.
        assert!(chernoff_upper_tail(5.0, 5.0) <= 1.0 + 1e-12);
    }

    #[test]
    #[should_panic(expected = "t >= mu")]
    fn chernoff_rejects_lower_tail() {
        chernoff_upper_tail(10.0, 5.0);
    }
}
