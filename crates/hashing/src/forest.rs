//! The oblivious two-choice forest (Section 7.2).
//!
//! Buckets are the `n` leaves of `Θ(n / log n)` complete binary trees, each
//! with `L = Θ(log n)` leaves and therefore `Θ(log log n)` depth. A bucket's
//! storage is the path from its leaf up to its tree root, *plus* a single
//! client-resident **super root** shared by all buckets. Each node stores up
//! to `t = Θ(1)` entries, so the server stores `Θ(n)` cells total — beating
//! the naive `Θ(n log log n)` padding of plain two-choice hashing while
//! still hiding per-bucket loads (every bucket occupies exactly
//! `depth` equal-sized cells).
//!
//! The storing algorithm `S` places a new key into the *lowest* node with a
//! free slot on either of its two PRF-chosen paths, overflowing into the
//! super root; Theorem 7.2 shows the super root holds more than
//! `Φ(n) = ω(log n)` keys only with negligible probability.

use dps_crypto::{HmacPrf, Prf};

/// A stored key-value entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// The key (from the large universe `U`).
    pub key: u64,
    /// The value payload.
    pub value: Vec<u8>,
}

/// Where an inserted key was placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Stored in a server-side tree node at the given height (0 = leaf).
    Node {
        /// Global node id.
        node: usize,
        /// Height in the tree (0 = leaf level).
        height: usize,
    },
    /// Stored in the client-resident super root.
    SuperRoot,
}

/// Errors from forest operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForestError {
    /// Both paths and the super root are full — the mapping scheme failed.
    /// Theorem 7.2: probability negligible for `Φ(n) = ω(log n)`.
    Full,
}

impl std::fmt::Display for ForestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ForestError::Full => write!(f, "both candidate paths and the super root are full"),
        }
    }
}

impl std::error::Error for ForestError {}

/// Geometry of the forest: tree shape and capacities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForestGeometry {
    /// Number of buckets `n` (= leaves addressable by the mapping function).
    pub n_buckets: usize,
    /// Leaves per tree `L` (power of two, `Θ(log n)`).
    pub leaves_per_tree: usize,
    /// Entries per node `t` (`Θ(1)`).
    pub node_capacity: usize,
    /// Entries the client-side super root may hold (`Φ(n) = ω(log n)`).
    pub super_root_capacity: usize,
}

impl ForestGeometry {
    /// The parameters Theorem 7.5 recommends: `L` the power of two nearest
    /// `log2 n`, `t = 3`, `Φ(n) = log2(n)^2` (an `ω(log n)` function with
    /// good constants at practical sizes).
    pub fn recommended(n: usize) -> Self {
        assert!(n > 0, "need at least one bucket");
        let log_n = (n.max(2) as f64).log2();
        let leaves_per_tree = (log_n.round() as usize).next_power_of_two().max(4);
        let super_root_capacity = ((log_n * log_n).ceil() as usize).max(16);
        Self { n_buckets: n, leaves_per_tree, node_capacity: 3, super_root_capacity }
    }

    /// Number of trees `R = ceil(n / L)`.
    pub fn num_trees(&self) -> usize {
        self.n_buckets.div_ceil(self.leaves_per_tree)
    }

    /// Nodes in one complete binary tree with `L` leaves.
    pub fn nodes_per_tree(&self) -> usize {
        2 * self.leaves_per_tree - 1
    }

    /// Total server-side nodes — `Θ(n)`, the storage claim of Theorem 7.2.
    pub fn total_nodes(&self) -> usize {
        self.num_trees() * self.nodes_per_tree()
    }

    /// Path length from a leaf to its tree root (number of server nodes per
    /// bucket) — `Θ(log log n)`, the bandwidth claim of Theorem 7.5.
    pub fn depth(&self) -> usize {
        self.leaves_per_tree.trailing_zeros() as usize + 1
    }

    /// Total entry slots on the server.
    pub fn server_slots(&self) -> usize {
        self.total_nodes() * self.node_capacity
    }

    /// The server node ids on the path of `bucket`, ordered leaf to root
    /// (`result[h]` has height `h`). The super root is not included — it
    /// lives on the client.
    ///
    /// # Panics
    /// Panics if `bucket >= n_buckets`.
    pub fn bucket_path(&self, bucket: usize) -> Vec<usize> {
        assert!(bucket < self.n_buckets, "bucket {bucket} out of range");
        let tree = bucket / self.leaves_per_tree;
        let base = tree * self.nodes_per_tree();
        // Heap layout within a tree: root at 0, children of i at 2i+1, 2i+2,
        // leaves at L-1 .. 2L-2.
        let mut local = self.leaves_per_tree - 1 + (bucket % self.leaves_per_tree);
        let mut path = Vec::with_capacity(self.depth());
        loop {
            path.push(base + local);
            if local == 0 {
                break;
            }
            local = (local - 1) / 2;
        }
        path
    }

    /// Height of a node given its global id (0 = leaf).
    pub fn node_height(&self, node: usize) -> usize {
        let local = node % self.nodes_per_tree();
        // Heap index i is at depth floor(log2(i+1)) from the root; height =
        // (levels - 1) - depth.
        let depth_from_root = (usize::BITS - 1 - (local + 1).leading_zeros()) as usize;
        (self.depth() - 1) - depth_from_root
    }
}

/// Picks the placement for a new entry given the loads of the two candidate
/// paths (leaf-to-root order): the lowest height with a free slot on either
/// path; ties go to the less-loaded node, then to path `a`. Returns
/// `(path_choice, height)` with `0 = a`, `1 = b`, or `None` if both paths
/// are full. This pure function is shared by the in-memory forest and the
/// DP-KVS client, guaranteeing identical placement decisions.
pub fn choose_slot(
    loads_a: &[usize],
    loads_b: &[usize],
    capacity: usize,
) -> Option<(usize, usize)> {
    debug_assert_eq!(loads_a.len(), loads_b.len());
    for h in 0..loads_a.len() {
        let free_a = loads_a[h] < capacity;
        let free_b = loads_b[h] < capacity;
        match (free_a, free_b) {
            (true, true) => return Some((usize::from(loads_b[h] < loads_a[h]), h)),
            (true, false) => return Some((0, h)),
            (false, true) => return Some((1, h)),
            (false, false) => {}
        }
    }
    None
}

/// In-memory oblivious two-choice forest.
///
/// This is both the reference implementation measured by experiment E10/E16
/// and the plaintext logic that the DP-KVS client executes over downloaded
/// (decrypted) paths.
#[derive(Debug, Clone)]
pub struct ObliviousForest {
    geometry: ForestGeometry,
    nodes: Vec<Vec<Entry>>,
    super_root: Vec<Entry>,
    prf1: HmacPrf,
    prf2: HmacPrf,
    len: usize,
}

impl ObliviousForest {
    /// Creates an empty forest keyed by `master_key` (the two PRF keys of
    /// the mapping function are derived by domain separation).
    pub fn new(geometry: ForestGeometry, master_key: &[u8]) -> Self {
        let master = HmacPrf::new(master_key);
        Self {
            nodes: vec![Vec::new(); geometry.total_nodes()],
            super_root: Vec::new(),
            prf1: master.derive(b"bucket-choice-1"),
            prf2: master.derive(b"bucket-choice-2"),
            geometry,
            len: 0,
        }
    }

    /// The forest geometry.
    pub fn geometry(&self) -> &ForestGeometry {
        &self.geometry
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The two candidate buckets for `key`: `Π(u) = {F(k1,u), F(k2,u)}`.
    pub fn buckets_for(&self, key: u64) -> (usize, usize) {
        let n = self.geometry.n_buckets as u64;
        let bytes = key.to_le_bytes();
        (self.prf1.eval_range(&bytes, n) as usize, self.prf2.eval_range(&bytes, n) as usize)
    }

    fn find(&self, key: u64) -> Option<(Option<usize>, usize)> {
        // Returns (node id or None for super root, slot index).
        let (a, b) = self.buckets_for(key);
        for node in self
            .geometry
            .bucket_path(a)
            .into_iter()
            .chain(self.geometry.bucket_path(b))
        {
            if let Some(slot) = self.nodes[node].iter().position(|e| e.key == key) {
                return Some((Some(node), slot));
            }
        }
        self.super_root
            .iter()
            .position(|e| e.key == key)
            .map(|slot| (None, slot))
    }

    /// Looks up `key`.
    pub fn get(&self, key: u64) -> Option<&[u8]> {
        self.find(key).map(|(node, slot)| match node {
            Some(node) => self.nodes[node][slot].value.as_slice(),
            None => self.super_root[slot].value.as_slice(),
        })
    }

    /// Inserts or updates `key`. New keys are placed by the storing
    /// algorithm `S`; existing keys are updated in place.
    pub fn insert(&mut self, key: u64, value: Vec<u8>) -> Result<Placement, ForestError> {
        if let Some((node, slot)) = self.find(key) {
            return Ok(match node {
                Some(node) => {
                    self.nodes[node][slot].value = value;
                    Placement::Node { node, height: self.geometry.node_height(node) }
                }
                None => {
                    self.super_root[slot].value = value;
                    Placement::SuperRoot
                }
            });
        }

        let (a, b) = self.buckets_for(key);
        let path_a = self.geometry.bucket_path(a);
        let path_b = self.geometry.bucket_path(b);
        let loads_a: Vec<usize> = path_a.iter().map(|&id| self.nodes[id].len()).collect();
        let loads_b: Vec<usize> = path_b.iter().map(|&id| self.nodes[id].len()).collect();

        match choose_slot(&loads_a, &loads_b, self.geometry.node_capacity) {
            Some((which, height)) => {
                let node = if which == 0 { path_a[height] } else { path_b[height] };
                self.nodes[node].push(Entry { key, value });
                self.len += 1;
                Ok(Placement::Node { node, height })
            }
            None => {
                if self.super_root.len() < self.geometry.super_root_capacity {
                    self.super_root.push(Entry { key, value });
                    self.len += 1;
                    Ok(Placement::SuperRoot)
                } else {
                    Err(ForestError::Full)
                }
            }
        }
    }

    /// Removes `key`, returning its value.
    pub fn remove(&mut self, key: u64) -> Option<Vec<u8>> {
        let (node, slot) = self.find(key)?;
        self.len -= 1;
        Some(match node {
            Some(node) => self.nodes[node].swap_remove(slot).value,
            None => self.super_root.swap_remove(slot).value,
        })
    }

    /// Current super-root load — the quantity bounded by Theorem 7.2.
    pub fn super_root_load(&self) -> usize {
        self.super_root.len()
    }

    /// Number of *filled* (at-capacity) nodes at each height — the empirical
    /// `H_i` compared against `β_i` in experiment E10.
    pub fn filled_per_height(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.geometry.depth()];
        for (id, node) in self.nodes.iter().enumerate() {
            if node.len() >= self.geometry.node_capacity {
                counts[self.geometry.node_height(id)] += 1;
            }
        }
        counts
    }

    /// Number of entries stored at each height.
    pub fn entries_per_height(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.geometry.depth()];
        for (id, node) in self.nodes.iter().enumerate() {
            counts[self.geometry.node_height(id)] += node.len();
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_geometry() -> ForestGeometry {
        ForestGeometry {
            n_buckets: 32,
            leaves_per_tree: 8,
            node_capacity: 2,
            super_root_capacity: 16,
        }
    }

    #[test]
    fn geometry_counts() {
        let g = small_geometry();
        assert_eq!(g.num_trees(), 4);
        assert_eq!(g.nodes_per_tree(), 15);
        assert_eq!(g.total_nodes(), 60);
        assert_eq!(g.depth(), 4);
        assert_eq!(g.server_slots(), 120);
    }

    #[test]
    fn geometry_handles_non_divisible_n() {
        let g = ForestGeometry { n_buckets: 33, ..small_geometry() };
        assert_eq!(g.num_trees(), 5);
        // Bucket 32 lives in the fifth tree.
        let path = g.bucket_path(32);
        assert!(path.iter().all(|&id| (4 * 15..5 * 15).contains(&id)));
    }

    #[test]
    fn bucket_path_shape() {
        let g = small_geometry();
        for bucket in 0..g.n_buckets {
            let path = g.bucket_path(bucket);
            assert_eq!(path.len(), g.depth());
            for (h, &node) in path.iter().enumerate() {
                assert_eq!(g.node_height(node), h, "bucket {bucket} height {h}");
            }
            // Path must end at the tree root (local index 0).
            assert_eq!(path.last().unwrap() % g.nodes_per_tree(), 0);
        }
    }

    #[test]
    fn paths_in_same_tree_share_root() {
        let g = small_geometry();
        let p0 = g.bucket_path(0);
        let p7 = g.bucket_path(7);
        assert_eq!(p0.last(), p7.last(), "same tree, same root");
        let p8 = g.bucket_path(8);
        assert_ne!(p0.last(), p8.last(), "different trees");
    }

    #[test]
    fn sibling_leaves_share_parent() {
        let g = small_geometry();
        let p0 = g.bucket_path(0);
        let p1 = g.bucket_path(1);
        assert_ne!(p0[0], p1[0]);
        assert_eq!(p0[1], p1[1]);
    }

    #[test]
    fn choose_slot_prefers_lowest_height() {
        // Height 0 full on both paths; height 1 free on b only.
        assert_eq!(choose_slot(&[2, 2, 0], &[2, 1, 0], 2), Some((1, 1)));
        // Tie at height 0: less-loaded node wins.
        assert_eq!(choose_slot(&[1, 0], &[0, 0], 2), Some((1, 0)));
        assert_eq!(choose_slot(&[0, 0], &[0, 0], 2), Some((0, 0)));
        // Everything full.
        assert_eq!(choose_slot(&[2, 2], &[2, 2], 2), None);
    }

    #[test]
    fn insert_then_get_round_trips() {
        let mut f = ObliviousForest::new(small_geometry(), b"test-key");
        for key in 0..20u64 {
            f.insert(key, vec![key as u8; 8]).unwrap();
        }
        assert_eq!(f.len(), 20);
        for key in 0..20u64 {
            assert_eq!(f.get(key), Some(vec![key as u8; 8].as_slice()), "key {key}");
        }
        assert_eq!(f.get(999), None);
    }

    #[test]
    fn insert_is_upsert() {
        let mut f = ObliviousForest::new(small_geometry(), b"test-key");
        f.insert(7, vec![1]).unwrap();
        f.insert(7, vec![2]).unwrap();
        assert_eq!(f.len(), 1);
        assert_eq!(f.get(7), Some([2u8].as_slice()));
    }

    #[test]
    fn remove_deletes() {
        let mut f = ObliviousForest::new(small_geometry(), b"test-key");
        f.insert(1, vec![9]).unwrap();
        assert_eq!(f.remove(1), Some(vec![9]));
        assert_eq!(f.get(1), None);
        assert_eq!(f.remove(1), None);
        assert_eq!(f.len(), 0);
    }

    #[test]
    fn placements_fill_bottom_up() {
        let mut f = ObliviousForest::new(small_geometry(), b"test-key");
        // With 32 buckets and capacity 2, early inserts must land at low heights.
        let mut heights = Vec::new();
        for key in 0..16u64 {
            match f.insert(key, vec![0]).unwrap() {
                Placement::Node { height, .. } => heights.push(height),
                Placement::SuperRoot => heights.push(usize::MAX),
            }
        }
        assert!(
            heights.iter().filter(|&&h| h == 0).count() >= 12,
            "most early inserts should land at leaves: {heights:?}"
        );
    }

    #[test]
    fn overflow_lands_in_super_root_then_fails() {
        // Tiny forest: 2 buckets in one tree of 2 leaves, capacity 1,
        // super root capacity 1 -> 4 entries fit (3 nodes + 1 super root).
        let g = ForestGeometry {
            n_buckets: 2,
            leaves_per_tree: 2,
            node_capacity: 1,
            super_root_capacity: 1,
        };
        let mut f = ObliviousForest::new(g, b"k");
        let mut placements = Vec::new();
        let mut err = None;
        for key in 0..64u64 {
            match f.insert(key, vec![]) {
                Ok(p) => placements.push(p),
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert_eq!(err, Some(ForestError::Full));
        assert_eq!(placements.len(), 4, "3 node slots + 1 super-root slot");
        assert_eq!(f.super_root_load(), 1);
        // All stored keys still retrievable after the failed insert.
        for p in 0..4u64 {
            assert!(f.get(p).is_some());
        }
    }

    #[test]
    fn recommended_geometry_scales() {
        let g = ForestGeometry::recommended(1 << 14);
        assert!(g.leaves_per_tree.is_power_of_two());
        assert_eq!(g.leaves_per_tree, 16); // log2(2^14) = 14 -> 16
        assert!(g.super_root_capacity >= 14 * 14);
        // Server storage stays linear: slots within a small constant of n.
        assert!(g.server_slots() <= 8 * (1 << 14));
    }

    #[test]
    fn filled_and_entry_histograms_are_consistent() {
        let mut f = ObliviousForest::new(small_geometry(), b"hist");
        for key in 0..40u64 {
            f.insert(key, vec![]).unwrap();
        }
        let entries = f.entries_per_height();
        let on_server: usize = entries.iter().sum();
        assert_eq!(on_server + f.super_root_load(), 40);
        let filled = f.filled_per_height();
        for (h, &count) in filled.iter().enumerate() {
            assert!(count * f.geometry().node_capacity <= entries[h] + count, "height {h}");
        }
    }

    /// The paper's headline property at reference scale: inserting n keys
    /// into an n-bucket forest never overflows the recommended super root.
    #[test]
    fn full_load_fits_whp_at_small_scale() {
        let n = 1 << 10;
        let g = ForestGeometry::recommended(n);
        let mut f = ObliviousForest::new(g, b"load-test");
        for key in 0..n as u64 {
            f.insert(key, vec![])
                .unwrap_or_else(|e| panic!("key {key}: {e}"));
        }
        assert!(
            f.super_root_load() <= g.super_root_capacity,
            "super root load {} over capacity {}",
            f.super_root_load(),
            g.super_root_capacity
        );
    }
}
