//! Two-choice hashing, classic and oblivious (Section 7 of the paper).
//!
//! The DP-KVS construction needs a *mapping scheme* that assigns keys from a
//! large universe to buckets of server storage while hiding bucket loads.
//! Padding every bucket of plain two-choice hashing to its worst-case
//! `O(log log n)` size costs `O(n log log n)` storage; the paper's novel
//! alternative arranges buckets as paths through a forest of
//! `Θ(n / log n)` binary trees so buckets *share* storage, recovering `O(n)`
//! server cells (Theorem 7.2).
//!
//! * [`classic`] — plain one-choice and two-choice balls-in-bins processes,
//!   reproducing the `Θ(log n / log log n)` vs `Θ(log log n)` max-load
//!   separation (Theorem A.1) that motivates the construction;
//! * [`forest`] — the oblivious two-choice forest: geometry, the storing
//!   algorithm `S`, level-occupancy accounting, and an in-memory reference
//!   implementation used both by experiments and by the DP-KVS client;
//! * [`theory`] — the `β_i` recursion of Lemma 7.3 as executable formulas.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classic;
pub mod cuckoo;
pub mod forest;
pub mod theory;

pub use cuckoo::CuckooTable;
pub use forest::{Entry, ForestGeometry, ObliviousForest, Placement};
