//! Quick component timing for the cipher hot path (dev aid).
use std::time::Instant;

use dps_crypto::chacha;
use dps_crypto::hmac::HmacKey;
use dps_crypto::poly1305::Poly1305;

fn main() {
    let key = [7u8; 32];
    let nonce = [3u8; 12];
    let mut data = vec![0xAAu8; 272];
    let iters = 200_000u32;

    let t = Instant::now();
    for _ in 0..iters {
        chacha::xor_keystream(&key, 0, &nonce, &mut data);
    }
    println!("chacha 272B: {:?}/op", t.elapsed() / iters);

    let mac = HmacKey::new(&key);
    let t = Instant::now();
    let mut acc = 0u8;
    for _ in 0..iters {
        acc ^= mac.mac(&data)[0];
    }
    println!("hmac 272B: {:?}/op  ({acc})", t.elapsed() / iters);

    let t = Instant::now();
    let mut acc = 0u8;
    for _ in 0..iters {
        let mut p = Poly1305::new(&key);
        p.update(&data);
        acc ^= p.finalize()[0];
    }
    println!("poly1305 272B: {:?}/op  ({acc})", t.elapsed() / iters);
}
