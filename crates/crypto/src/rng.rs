//! Deterministic ChaCha20-based CSPRNG.
//!
//! Every scheme in this workspace draws its private randomness from a
//! [`ChaChaRng`] passed in explicitly. This keeps experiments exactly
//! reproducible from a seed (required by the Monte-Carlo privacy auditor,
//! which compares transcript *distributions*) while remaining a
//! cryptographically strong generator, matching the paper's assumption that
//! scheme randomness is unpredictable to the adversary.

use crate::chacha;

/// A deterministic cryptographically strong random number generator.
#[derive(Clone)]
pub struct ChaChaRng {
    key: [u8; chacha::KEY_LEN],
    nonce: [u8; chacha::NONCE_LEN],
    counter: u32,
    buffer: [u8; chacha::BLOCK_LEN],
    offset: usize,
}

impl ChaChaRng {
    /// Creates a generator from a full 256-bit key.
    pub fn from_key(key: [u8; chacha::KEY_LEN]) -> Self {
        Self {
            key,
            nonce: [0; chacha::NONCE_LEN],
            counter: 0,
            buffer: [0; chacha::BLOCK_LEN],
            offset: chacha::BLOCK_LEN,
        }
    }

    /// Creates a generator from a 64-bit seed, expanded with SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut key = [0u8; chacha::KEY_LEN];
        let mut state = seed;
        for chunk in key.chunks_exact_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        Self::from_key(key)
    }

    /// Derives an independent child generator. Used to give each component
    /// of a composite scheme (e.g. the DP-RAM inside DP-KVS) its own stream.
    pub fn fork(&mut self) -> Self {
        let mut key = [0u8; chacha::KEY_LEN];
        self.fill_bytes(&mut key);
        Self::from_key(key)
    }

    fn refill(&mut self) {
        self.buffer = chacha::block(&self.key, self.counter, &self.nonce);
        self.counter = self.counter.wrapping_add(1);
        if self.counter == 0 {
            // 256 GiB of output consumed: roll the nonce to keep the stream
            // non-repeating. Unreachable in practice but cheap to handle.
            for byte in self.nonce.iter_mut() {
                *byte = byte.wrapping_add(1);
                if *byte != 0 {
                    break;
                }
            }
        }
        self.offset = 0;
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut filled = 0;
        while filled < dest.len() {
            if self.offset == chacha::BLOCK_LEN {
                self.refill();
            }
            let take = (chacha::BLOCK_LEN - self.offset).min(dest.len() - filled);
            dest[filled..filled + take]
                .copy_from_slice(&self.buffer[self.offset..self.offset + take]);
            self.offset += take;
            filled += take;
        }
    }

    /// Fills `dest` exactly like [`ChaChaRng::fill_bytes`] (same bytes,
    /// same final generator state) but generates whole keystream blocks
    /// through the wide cores — 8 consecutive counters per pass, then 4 —
    /// instead of staging each through the internal buffer. Falls back to
    /// the scalar path near the (practically unreachable) counter wrap so
    /// the nonce-roll behavior stays identical.
    fn fill_bytes_bulk(&mut self, dest: &mut [u8]) {
        // Drain the currently buffered partial block first.
        let take = (chacha::BLOCK_LEN - self.offset).min(dest.len());
        dest[..take].copy_from_slice(&self.buffer[self.offset..self.offset + take]);
        self.offset += take;
        let mut filled = take;
        // Whole blocks straight into `dest`, 8 counters per wide pass
        // (one AVX2 permutation, or two 4-lane passes below that tier).
        while dest.len() - filled >= 8 * chacha::BLOCK_LEN && self.counter < u32::MAX - 8 {
            let counters: [u32; 8] = std::array::from_fn(|i| self.counter + i as u32);
            let blocks = chacha::blocks8(&self.key, &counters, &[&self.nonce; 8]);
            for block in &blocks {
                dest[filled..filled + chacha::BLOCK_LEN].copy_from_slice(block);
                filled += chacha::BLOCK_LEN;
            }
            self.counter += 8;
        }
        // Remaining whole blocks, 4 counters per pass.
        while dest.len() - filled >= 4 * chacha::BLOCK_LEN && self.counter < u32::MAX - 4 {
            let counters = [self.counter, self.counter + 1, self.counter + 2, self.counter + 3];
            let blocks = chacha::blocks4(&self.key, &counters, &[&self.nonce; 4]);
            for block in &blocks {
                dest[filled..filled + chacha::BLOCK_LEN].copy_from_slice(block);
                filled += chacha::BLOCK_LEN;
            }
            self.counter += 4;
        }
        // Tail (and any wrap-adjacent stretch) through the scalar path.
        self.fill_bytes(&mut dest[filled..]);
    }

    /// Draws `count` encryption nonces, in order, on this thread. Feeding
    /// these to the slice-form batch encryption primitives
    /// ([`crate::cipher::BlockCipher::encrypt_with_nonce_into`],
    /// [`crate::aead::AeadCipher::seal_with_nonce_into`]) yields output
    /// byte-identical to a sequential loop drawing one nonce per cell from
    /// the same stream — which is what makes parallel batch crypto
    /// deterministic regardless of thread interleaving. Internally the
    /// nonce bytes are generated in bulk through the wide ChaCha core
    /// ([`ChaChaRng::fill_bytes_bulk`]); the stream is unchanged.
    pub fn draw_nonces(&mut self, count: usize) -> Vec<chacha::Nonce> {
        let mut bytes = vec![0u8; count * chacha::NONCE_LEN];
        self.fill_bytes_bulk(&mut bytes);
        bytes
            .chunks_exact(chacha::NONCE_LEN)
            .map(|chunk| chunk.try_into().expect("nonce-sized chunk"))
            .collect()
    }

    /// Returns a uniformly random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let mut bytes = [0u8; 8];
        self.fill_bytes(&mut bytes);
        u64::from_le_bytes(bytes)
    }

    /// Returns a uniformly random `u32`.
    pub fn next_u32(&mut self) -> u32 {
        let mut bytes = [0u8; 4];
        self.fill_bytes(&mut bytes);
        u32::from_le_bytes(bytes)
    }

    /// Returns a uniformly random integer in `[0, n)` with no modulo bias
    /// (rejection sampling).
    pub fn gen_range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_range requires a non-empty range");
        let threshold = n.wrapping_neg() % n;
        loop {
            let r = self.next_u64();
            if r >= threshold {
                return r % n;
            }
        }
    }

    /// Returns a uniformly random index in `[0, n)`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        self.gen_range(n as u64) as usize
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle of `slice`.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Samples `k` distinct values uniformly from `[0, n)` using Floyd's
    /// algorithm (O(k) expected work, independent of `n`).
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_distinct(&mut self, k: usize, n: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct values from [0, {n})");
        let mut chosen = std::collections::HashSet::with_capacity(k);
        let mut out = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.gen_index(j + 1);
            let v = if chosen.insert(t) { t } else { j };
            if v != t {
                chosen.insert(v);
            }
            out.push(v);
        }
        out
    }
}

impl std::fmt::Debug for ChaChaRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("ChaChaRng")
            .field("counter", &self.counter)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = ChaChaRng::seed_from_u64(42);
        let mut b = ChaChaRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaChaRng::seed_from_u64(1);
        let mut b = ChaChaRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fork_is_independent() {
        let mut parent = ChaChaRng::seed_from_u64(7);
        let mut child = parent.fork();
        assert_ne!(parent.next_u64(), child.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = ChaChaRng::seed_from_u64(3);
        for n in [1u64, 2, 3, 7, 100, u64::MAX] {
            for _ in 0..50 {
                assert!(rng.gen_range(n) < n);
            }
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = ChaChaRng::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = ChaChaRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = ChaChaRng::seed_from_u64(11);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = ChaChaRng::seed_from_u64(13);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let freq = hits as f64 / 20_000.0;
        assert!((freq - 0.3).abs() < 0.02, "frequency {freq} too far from 0.3");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = ChaChaRng::seed_from_u64(17);
        let mut v: Vec<u32> = (0..64).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn sample_distinct_properties() {
        let mut rng = ChaChaRng::seed_from_u64(19);
        for (k, n) in [(0, 10), (1, 1), (5, 10), (10, 10), (32, 1000)] {
            let sample = rng.sample_distinct(k, n);
            assert_eq!(sample.len(), k);
            let set: std::collections::HashSet<_> = sample.iter().copied().collect();
            assert_eq!(set.len(), k, "sample must be distinct");
            assert!(sample.iter().all(|&v| v < n));
        }
    }

    /// Floyd sampling must be uniform over subsets: check single-element
    /// marginals are flat.
    #[test]
    fn sample_distinct_marginals_uniform() {
        let mut rng = ChaChaRng::seed_from_u64(23);
        let n = 10;
        let k = 3;
        let trials = 30_000;
        let mut counts = vec![0u32; n];
        for _ in 0..trials {
            for v in rng.sample_distinct(k, n) {
                counts[v] += 1;
            }
        }
        let expected = trials as f64 * k as f64 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "element {i}: count {c}, deviation {dev:.3}");
        }
    }

    /// The bulk wide-core nonce draw is byte-identical to drawing nonces
    /// one at a time, leaves the generator in the same state (subsequent
    /// output matches), and handles every buffer-offset alignment.
    #[test]
    fn draw_nonces_matches_sequential_draws() {
        for misalign in [0usize, 1, 5, 12, 63] {
            for count in [0usize, 1, 4, 5, 21, 100] {
                let mut bulk = ChaChaRng::seed_from_u64(41);
                let mut seq = ChaChaRng::seed_from_u64(41);
                let mut skip = vec![0u8; misalign];
                bulk.fill_bytes(&mut skip);
                seq.fill_bytes(&mut skip);
                let nonces = bulk.draw_nonces(count);
                let expected: Vec<[u8; 12]> = (0..count)
                    .map(|_| {
                        let mut n = [0u8; 12];
                        seq.fill_bytes(&mut n);
                        n
                    })
                    .collect();
                assert_eq!(nonces, expected, "misalign {misalign}, count {count}");
                assert_eq!(
                    bulk.next_u64(),
                    seq.next_u64(),
                    "post-draw state diverged (misalign {misalign}, count {count})"
                );
            }
        }
    }

    #[test]
    fn fill_bytes_across_block_boundaries() {
        let mut a = ChaChaRng::seed_from_u64(29);
        let mut b = ChaChaRng::seed_from_u64(29);
        let mut buf_a = [0u8; 200];
        a.fill_bytes(&mut buf_a);
        let mut buf_b = [0u8; 200];
        for chunk in buf_b.chunks_mut(7) {
            b.fill_bytes(chunk);
        }
        assert_eq!(buf_a, buf_b, "chunked fills must match one-shot fill");
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn sample_distinct_rejects_oversample() {
        let mut rng = ChaChaRng::seed_from_u64(31);
        rng.sample_distinct(11, 10);
    }
}
