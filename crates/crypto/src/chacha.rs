//! The ChaCha20 stream cipher core (RFC 8439).
//!
//! This is the single primitive from which both the IND-CPA cipher
//! ([`crate::cipher`]) and the deterministic CSPRNG ([`crate::rng`]) are
//! built. The implementation follows RFC 8439 §2.3 exactly and is verified
//! against the RFC's test vectors.

/// Size of a ChaCha20 key in bytes.
pub const KEY_LEN: usize = 32;
/// Size of a ChaCha20 nonce in bytes (IETF variant).
pub const NONCE_LEN: usize = 12;
/// A ChaCha20 nonce: the per-cell randomness unit the batch-crypto helpers
/// pre-draw on the caller thread before fanning work across a pool.
pub type Nonce = [u8; NONCE_LEN];
/// Size of one keystream block in bytes.
pub const BLOCK_LEN: usize = 64;

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Parses key and nonce into the 16-word initial state (counter word left
/// at 0); shared by [`block`] and [`xor_keystream`] so multi-block calls
/// parse the inputs once.
#[inline(always)]
fn init_state(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN]) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&CONSTANTS);
    for (i, chunk) in key.chunks_exact(4).enumerate() {
        state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
    }
    for (i, chunk) in nonce.chunks_exact(4).enumerate() {
        state[13 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
    }
    state
}

/// The 20 ChaCha rounds (RFC 8439 §2.3).
#[inline(always)]
fn permute(working: &mut [u32; 16]) {
    for _ in 0..10 {
        // Column rounds.
        quarter_round(working, 0, 4, 8, 12);
        quarter_round(working, 1, 5, 9, 13);
        quarter_round(working, 2, 6, 10, 14);
        quarter_round(working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(working, 0, 5, 10, 15);
        quarter_round(working, 1, 6, 11, 12);
        quarter_round(working, 2, 7, 8, 13);
        quarter_round(working, 3, 4, 9, 14);
    }
}

/// Computes one 64-byte ChaCha20 keystream block for the given key, block
/// counter and nonce (RFC 8439 §2.3).
pub fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; BLOCK_LEN] {
    let mut state = init_state(key, nonce);
    state[12] = counter;
    let mut working = state;
    permute(&mut working);

    let mut out = [0u8; BLOCK_LEN];
    for (i, word) in working.iter().enumerate() {
        let sum = word.wrapping_add(state[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&sum.to_le_bytes());
    }
    out
}

/// XORs `data` in place with the ChaCha20 keystream starting at block
/// `counter`. This is both encryption and decryption (RFC 8439 §2.4).
///
/// Multi-block fast path: the state is parsed once, full blocks are XORed
/// as `u32` words directly into `data` (no `[u8; 64]` keystream buffer is
/// materialized), and only a sub-block tail falls back to byte granularity.
pub fn xor_keystream(
    key: &[u8; KEY_LEN],
    mut counter: u32,
    nonce: &[u8; NONCE_LEN],
    data: &mut [u8],
) {
    let mut state = init_state(key, nonce);
    let mut chunks = data.chunks_exact_mut(BLOCK_LEN);
    for chunk in &mut chunks {
        state[12] = counter;
        let mut working = state;
        permute(&mut working);
        for (i, word) in working.iter().enumerate() {
            let ks = word.wrapping_add(state[i]);
            let lane = &mut chunk[4 * i..4 * i + 4];
            let mixed = u32::from_le_bytes(lane.try_into().expect("4-byte lane")) ^ ks;
            lane.copy_from_slice(&mixed.to_le_bytes());
        }
        counter = counter.wrapping_add(1);
    }
    let tail = chunks.into_remainder();
    if !tail.is_empty() {
        state[12] = counter;
        let mut working = state;
        permute(&mut working);
        for (i, byte) in tail.iter_mut().enumerate() {
            let ks = working[i / 4].wrapping_add(state[i / 4]);
            *byte ^= ks.to_le_bytes()[i % 4];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// RFC 8439 §2.3.2: ChaCha20 block function test vector.
    #[test]
    fn rfc8439_block_vector() {
        let key: [u8; 32] = hex(
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
        )
        .try_into()
        .unwrap();
        let nonce: [u8; 12] = hex("000000090000004a00000000").try_into().unwrap();
        let expected = hex(
            "10f1e7e4d13b5915500fdd1fa32071c4 c7d1f4c733c068030422aa9ac3d46c4e
             d2826446079faa0914c2d705d98b02a2 b5129cd1de164eb9cbd083e8a2503c4e",
        );
        assert_eq!(block(&key, 1, &nonce).to_vec(), expected);
    }

    /// RFC 8439 §2.4.2: ChaCha20 encryption test vector.
    #[test]
    fn rfc8439_encrypt_vector() {
        let key: [u8; 32] = hex(
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
        )
        .try_into()
        .unwrap();
        let nonce: [u8; 12] = hex("000000000000004a00000000").try_into().unwrap();
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it."
            .to_vec();
        xor_keystream(&key, 1, &nonce, &mut data);
        let expected = hex(
            "6e2e359a2568f98041ba0728dd0d6981 e97e7aec1d4360c20a27afccfd9fae0b
             f91b65c5524733ab8f593dabcd62b357 1639d624e65152ab8f530c359f0861d8
             07ca0dbf500d6a6156a38e088a22b65e 52bc514d16ccf806818ce91ab7793736
             5af90bbf74a35be6b40b8eedf2785e42 874d",
        );
        assert_eq!(data, expected);
    }

    /// Round-trip: XORing twice with the same keystream restores the input.
    #[test]
    fn keystream_round_trip() {
        let key = [7u8; 32];
        let nonce = [3u8; 12];
        let original: Vec<u8> = (0..=255).collect();
        let mut data = original.clone();
        xor_keystream(&key, 0, &nonce, &mut data);
        assert_ne!(data, original);
        xor_keystream(&key, 0, &nonce, &mut data);
        assert_eq!(data, original);
    }

    /// Distinct counters produce distinct keystream blocks.
    #[test]
    fn counter_separates_blocks() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        assert_ne!(block(&key, 0, &nonce), block(&key, 1, &nonce));
    }

    /// Distinct nonces produce distinct keystream blocks.
    #[test]
    fn nonce_separates_blocks() {
        let key = [1u8; 32];
        assert_ne!(block(&key, 0, &[0u8; 12]), block(&key, 0, &[1u8; 12]));
    }
}
