//! The ChaCha20 stream cipher core (RFC 8439).
//!
//! This is the single primitive from which both the IND-CPA cipher
//! ([`crate::cipher`]) and the deterministic CSPRNG ([`crate::rng`]) are
//! built. The implementation follows RFC 8439 §2.3 exactly and is verified
//! against the RFC's test vectors.
//!
//! Three permutation cores share the RFC semantics and are selected at
//! runtime through the [`crate::isa`] dispatch table:
//!
//! * the scalar core ([`block`]) permutes one 64-byte block at a time;
//! * the **4-lane wide core** permutes 4 independent blocks per pass in a
//!   structure-of-arrays state (`[[u32; 4]; 16]`, word-major). On x86-64
//!   it runs as explicit SSE2 intrinsics ([`sse2`]); everywhere else (and
//!   under `DPS_FORCE_ISA=portable`) as plain lane loops LLVM
//!   auto-vectorizes — no unstable SIMD APIs, no `unsafe`;
//! * the **8-lane wide core** ([`avx2`], `[[u32; 8]; 16]` over `__m256i`)
//!   doubles the lane width when `is_x86_feature_detected!("avx2")`
//!   reports AVX2 at runtime. On every other tier, 8-lane entry points
//!   ([`blocks8`]) decompose into two byte-identical 4-lane passes, so
//!   the same code compiles and runs on aarch64 unchanged.
//!
//! The wide cores back [`xor_keystream`] (consecutive counters of one
//! stream, 8 or 4 per pass) and [`xor_keystream_batch_strided`] (one block
//! each of 8 or 4 *different* nonce streams, the shape batch re-encryption
//! of short cells produces). Every tier is byte-identical to the scalar
//! core: the lanes compute exactly the blocks the scalar loop would, in
//! the same positions — the cross-tier proptests (run once per
//! `DPS_FORCE_ISA` tier in CI) pin this.

use crate::isa::{self, IsaTier};

/// Size of a ChaCha20 key in bytes.
pub const KEY_LEN: usize = 32;
/// Size of a ChaCha20 nonce in bytes (IETF variant).
pub const NONCE_LEN: usize = 12;
/// A ChaCha20 nonce: the per-cell randomness unit the batch-crypto helpers
/// pre-draw on the caller thread before fanning work across a pool.
pub type Nonce = [u8; NONCE_LEN];
/// Size of one keystream block in bytes.
pub const BLOCK_LEN: usize = 64;
/// The widest lane count any tier permutes per pass (the AVX2 8-lane
/// core). Batch layouts and pool chunk sizes align to this so fan-out
/// never fragments a full-width pass; narrower tiers split the same work
/// into 4-lane passes with byte-identical output.
pub const WIDE_LANES: usize = 8;
/// Lane count of the mid-tier (SSE2 / portable) wide core.
const LANES4: usize = 4;

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Parses key and nonce into the 16-word initial state (counter word left
/// at 0); shared by [`block`] and [`xor_keystream`] so multi-block calls
/// parse the inputs once.
#[inline(always)]
fn init_state(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN]) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&CONSTANTS);
    for (i, chunk) in key.chunks_exact(4).enumerate() {
        state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
    }
    for (i, chunk) in nonce.chunks_exact(4).enumerate() {
        state[13 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
    }
    state
}

/// The 20 ChaCha rounds (RFC 8439 §2.3).
#[inline(always)]
fn permute(working: &mut [u32; 16]) {
    for _ in 0..10 {
        // Column rounds.
        quarter_round(working, 0, 4, 8, 12);
        quarter_round(working, 1, 5, 9, 13);
        quarter_round(working, 2, 6, 10, 14);
        quarter_round(working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(working, 0, 5, 10, 15);
        quarter_round(working, 1, 6, 11, 12);
        quarter_round(working, 2, 7, 8, 13);
        quarter_round(working, 3, 4, 9, 14);
    }
}

/// A wide core's state: 16 state words × `L` blocks (structure-of-arrays,
/// word-major): `state[w][l]` is word `w` of lane `l`'s block.
type Wide4State = [[u32; LANES4]; 16];
/// The 8-lane twin of [`Wide4State`], consumed by the AVX2 core.
#[cfg(all(target_arch = "x86_64", target_feature = "sse2"))]
type Wide8State = [[u32; WIDE_LANES]; 16];

/// Portable wide core, generic over the lane count: permutes `L`
/// interleaved blocks and returns the feed-forward sum
/// `permute(init) + init`, word-major.
///
/// The per-step lane loops are written to auto-vectorize, but current
/// LLVM refuses to build SLP trees through vector funnel-shift (rotate)
/// nodes, so on x86-64 the [`sse2`] / [`avx2`] twins — explicit
/// intrinsics, same arithmetic — are dispatched instead. This portable
/// form is the fallback for every other target (and for
/// `DPS_FORCE_ISA=portable`), and the cross-check oracle the
/// `wide_cores_agree` tests pin the intrinsic paths against.
fn wide_core_portable<const L: usize>(init: &[[u32; L]; 16]) -> [[u32; L]; 16] {
    #[derive(Clone, Copy)]
    #[repr(align(16))]
    struct Lane<const L: usize>([u32; L]);

    impl<const L: usize> Lane<L> {
        #[inline(always)]
        fn add(self, o: Self) -> Self {
            Lane(std::array::from_fn(|i| self.0[i].wrapping_add(o.0[i])))
        }

        #[inline(always)]
        fn xor_rotl(self, o: Self, n: u32) -> Self {
            Lane(std::array::from_fn(|i| (self.0[i] ^ o.0[i]).rotate_left(n)))
        }
    }

    #[inline(always)]
    fn quarter<const L: usize>(
        a: Lane<L>,
        b: Lane<L>,
        c: Lane<L>,
        d: Lane<L>,
    ) -> (Lane<L>, Lane<L>, Lane<L>, Lane<L>) {
        let a = a.add(b);
        let d = d.xor_rotl(a, 16);
        let c = c.add(d);
        let b = b.xor_rotl(c, 12);
        let a = a.add(b);
        let d = d.xor_rotl(a, 8);
        let c = c.add(d);
        let b = b.xor_rotl(c, 7);
        (a, b, c, d)
    }

    let start: [Lane<L>; 16] = std::array::from_fn(|w| Lane(init[w]));
    let [mut x0, mut x1, mut x2, mut x3, mut x4, mut x5, mut x6, mut x7, mut x8, mut x9, mut x10, mut x11, mut x12, mut x13, mut x14, mut x15] =
        start;
    for _ in 0..10 {
        // Column rounds.
        (x0, x4, x8, x12) = quarter(x0, x4, x8, x12);
        (x1, x5, x9, x13) = quarter(x1, x5, x9, x13);
        (x2, x6, x10, x14) = quarter(x2, x6, x10, x14);
        (x3, x7, x11, x15) = quarter(x3, x7, x11, x15);
        // Diagonal rounds.
        (x0, x5, x10, x15) = quarter(x0, x5, x10, x15);
        (x1, x6, x11, x12) = quarter(x1, x6, x11, x12);
        (x2, x7, x8, x13) = quarter(x2, x7, x8, x13);
        (x3, x4, x9, x14) = quarter(x3, x4, x9, x14);
    }
    let end = [x0, x1, x2, x3, x4, x5, x6, x7, x8, x9, x10, x11, x12, x13, x14, x15];
    std::array::from_fn(|w| end[w].add(start[w]).0)
}

/// Transposes a word-major feed-forward sum (as the portable core returns
/// it) into lane-major keystream words.
fn lane_major<const L: usize>(summed: &[[u32; L]; 16]) -> [[u32; 16]; L] {
    let mut out = [[0u32; 16]; L];
    for (w, row) in summed.iter().enumerate() {
        for (l, lane) in out.iter_mut().enumerate() {
            lane[w] = row[l];
        }
    }
    out
}

/// SSE2 wide core: the x86-64 4-lane tier. SSE2 is part of the x86-64
/// baseline ABI (statically enabled on every rustc x86-64 target unless
/// explicitly disabled, which the `cfg` guard respects), so the lone
/// `unsafe` block below — required only because `#[target_feature]`
/// functions are formally unsafe to call — can never execute an
/// unsupported instruction. All intrinsics used are value operations
/// (no pointers), stable since Rust 1.27.
#[cfg(all(target_arch = "x86_64", target_feature = "sse2"))]
mod sse2 {
    use super::{Wide4State, LANES4};
    use std::arch::x86_64::{
        __m128i, _mm_add_epi32, _mm_loadu_si128, _mm_or_si128, _mm_set_epi32, _mm_slli_epi32,
        _mm_srli_epi32, _mm_storeu_si128, _mm_unpackhi_epi32, _mm_unpackhi_epi64,
        _mm_unpacklo_epi32, _mm_unpacklo_epi64, _mm_xor_si128,
    };

    #[target_feature(enable = "sse2")]
    #[inline]
    #[allow(unsafe_code)]
    fn load(w: &[u32; LANES4]) -> __m128i {
        // SAFETY: `w` is 16 valid bytes; `_mm_loadu_si128` has no
        // alignment requirement. One `movdqu` instead of a 4-way
        // insert chain — this runs 32 times per pass (state init +
        // feed-forward).
        unsafe { _mm_loadu_si128(w.as_ptr().cast::<__m128i>()) }
    }

    /// Permute + feed-forward + transpose, all in vector registers:
    /// returns `[lane][tile]`, where tile `t` holds lane words
    /// `4t..4t + 4` (16 contiguous keystream bytes).
    #[target_feature(enable = "sse2")]
    fn keystream_tiles(init: &Wide4State) -> [[__m128i; 4]; LANES4] {
        macro_rules! rotl {
            ($v:expr, $n:literal) => {
                _mm_or_si128(_mm_slli_epi32::<$n>($v), _mm_srli_epi32::<{ 32 - $n }>($v))
            };
        }
        let mut x: [__m128i; 16] = std::array::from_fn(|w| load(&init[w]));
        macro_rules! quarter {
            ($a:literal, $b:literal, $c:literal, $d:literal) => {
                x[$a] = _mm_add_epi32(x[$a], x[$b]);
                x[$d] = rotl!(_mm_xor_si128(x[$d], x[$a]), 16);
                x[$c] = _mm_add_epi32(x[$c], x[$d]);
                x[$b] = rotl!(_mm_xor_si128(x[$b], x[$c]), 12);
                x[$a] = _mm_add_epi32(x[$a], x[$b]);
                x[$d] = rotl!(_mm_xor_si128(x[$d], x[$a]), 8);
                x[$c] = _mm_add_epi32(x[$c], x[$d]);
                x[$b] = rotl!(_mm_xor_si128(x[$b], x[$c]), 7);
            };
        }
        for _ in 0..10 {
            // Column rounds.
            quarter!(0, 4, 8, 12);
            quarter!(1, 5, 9, 13);
            quarter!(2, 6, 10, 14);
            quarter!(3, 7, 11, 15);
            // Diagonal rounds.
            quarter!(0, 5, 10, 15);
            quarter!(1, 6, 11, 12);
            quarter!(2, 7, 8, 13);
            quarter!(3, 4, 9, 14);
        }
        for w in 0..16 {
            x[w] = _mm_add_epi32(x[w], load(&init[w]));
        }
        let mut out = [[_mm_set_epi32(0, 0, 0, 0); 4]; LANES4];
        for tile in 0..4 {
            let [r0, r1, r2, r3] = [x[4 * tile], x[4 * tile + 1], x[4 * tile + 2], x[4 * tile + 3]];
            let t0 = _mm_unpacklo_epi32(r0, r1);
            let t1 = _mm_unpackhi_epi32(r0, r1);
            let t2 = _mm_unpacklo_epi32(r2, r3);
            let t3 = _mm_unpackhi_epi32(r2, r3);
            out[0][tile] = _mm_unpacklo_epi64(t0, t2);
            out[1][tile] = _mm_unpackhi_epi64(t0, t2);
            out[2][tile] = _mm_unpacklo_epi64(t1, t3);
            out[3][tile] = _mm_unpackhi_epi64(t1, t3);
        }
        out
    }

    #[target_feature(enable = "sse2")]
    #[allow(unsafe_code)]
    fn wide_core_impl(init: &Wide4State, out: &mut [[u32; 16]; LANES4]) {
        let tiles = keystream_tiles(init);
        for (lane_words, lane_tiles) in out.iter_mut().zip(tiles) {
            for (tile, v) in lane_tiles.into_iter().enumerate() {
                // SAFETY: `lane_words[4 * tile..4 * tile + 4]` is 16
                // valid, exclusively borrowed bytes; `_mm_storeu_si128`
                // has no alignment requirement.
                unsafe {
                    _mm_storeu_si128(lane_words[4 * tile..].as_mut_ptr().cast::<__m128i>(), v);
                }
            }
        }
    }

    #[target_feature(enable = "sse2")]
    #[allow(unsafe_code)]
    fn xor_lanes_impl(init: &Wide4State, lanes: [&mut [u8]; LANES4]) {
        let tiles = keystream_tiles(init);
        for (lane, lane_tiles) in lanes.into_iter().zip(tiles) {
            assert_eq!(lane.len(), super::BLOCK_LEN, "lane must be one full block");
            for (tile, v) in lane_tiles.into_iter().enumerate() {
                let chunk = &mut lane[16 * tile..16 * tile + 16];
                // SAFETY: `chunk` is 16 valid, exclusively borrowed bytes;
                // the unaligned load/store intrinsics have no alignment
                // requirement.
                unsafe {
                    let ptr = chunk.as_mut_ptr().cast::<__m128i>();
                    _mm_storeu_si128(ptr, _mm_xor_si128(_mm_loadu_si128(ptr), v));
                }
            }
        }
    }

    #[allow(unsafe_code)]
    pub(super) fn wide_core(init: &Wide4State, out: &mut [[u32; 16]; LANES4]) {
        // SAFETY: guarded by `cfg(target_feature = "sse2")` above, so the
        // required feature is statically enabled for this compilation.
        unsafe { wide_core_impl(init, out) }
    }

    #[allow(unsafe_code)]
    pub(super) fn xor_lanes(init: &Wide4State, lanes: [&mut [u8]; LANES4]) {
        // SAFETY: as for `wide_core` — sse2 is statically enabled here.
        unsafe { xor_lanes_impl(init, lanes) }
    }
}

/// AVX2 wide core: the x86-64 8-lane tier. Unlike [`sse2`], AVX2 is *not*
/// part of the baseline ABI, so this module is compiled on every x86-64
/// target but only ever *entered* when the [`crate::isa`] dispatch tier
/// is [`IsaTier::Avx2`] — and the public wrappers re-assert
/// `is_x86_feature_detected!("avx2")` (a cached atomic load) before the
/// lone `unsafe` call into each `#[target_feature(enable = "avx2")]`
/// body, so an unsupported instruction can never execute regardless of
/// caller discipline. The 16/12/8/7-bit rotates use `vpshufb`
/// byte-shuffles where a shuffle beats shift+shift+or (16 and 8), the
/// standard AVX2 ChaCha20 formulation. All remaining intrinsics are value
/// operations except the unaligned load/stores through pointers derived
/// from exclusively borrowed, length-checked slices.
#[cfg(all(target_arch = "x86_64", target_feature = "sse2"))]
mod avx2 {
    use super::{Wide8State, BLOCK_LEN, WIDE_LANES};
    use std::arch::x86_64::{
        __m256i, _mm256_add_epi32, _mm256_loadu_si256, _mm256_or_si256, _mm256_permute2x128_si256,
        _mm256_set_epi8, _mm256_shuffle_epi8, _mm256_slli_epi32, _mm256_srli_epi32,
        _mm256_storeu_si256, _mm256_unpackhi_epi32, _mm256_unpackhi_epi64, _mm256_unpacklo_epi32,
        _mm256_unpacklo_epi64, _mm256_xor_si256,
    };

    #[target_feature(enable = "avx2")]
    #[inline]
    #[allow(unsafe_code)]
    fn load(w: &[u32; WIDE_LANES]) -> __m256i {
        // SAFETY: `w` is 32 valid bytes; `_mm256_loadu_si256` has no
        // alignment requirement. One `vmovdqu` instead of an 8-way
        // insert chain — this runs 32 times per pass (state init +
        // feed-forward).
        unsafe { _mm256_loadu_si256(w.as_ptr().cast::<__m256i>()) }
    }

    /// `vpshufb` mask rotating each 32-bit element left by 16 bits
    /// (per-dword byte order [2,3,0,1]; same pattern in both 128-bit
    /// halves, as `_mm256_shuffle_epi8` shuffles them independently).
    #[target_feature(enable = "avx2")]
    #[inline]
    fn rot16_mask() -> __m256i {
        _mm256_set_epi8(
            13, 12, 15, 14, 9, 8, 11, 10, 5, 4, 7, 6, 1, 0, 3, 2, // upper half
            13, 12, 15, 14, 9, 8, 11, 10, 5, 4, 7, 6, 1, 0, 3, 2, // lower half
        )
    }

    /// `vpshufb` mask rotating each 32-bit element left by 8 bits
    /// (per-dword byte order [3,0,1,2]).
    #[target_feature(enable = "avx2")]
    #[inline]
    fn rot8_mask() -> __m256i {
        _mm256_set_epi8(
            14, 13, 12, 15, 10, 9, 8, 11, 6, 5, 4, 7, 2, 1, 0, 3, // upper half
            14, 13, 12, 15, 10, 9, 8, 11, 6, 5, 4, 7, 2, 1, 0, 3, // lower half
        )
    }

    /// Transposes 8 word-rows (each holding one state word for lanes
    /// 0..8) into 8 lane-rows of 8 consecutive words, entirely in
    /// registers: 32-bit unpacks, 64-bit unpacks, then cross-half
    /// permutes.
    #[target_feature(enable = "avx2")]
    #[inline]
    fn transpose8(r: [__m256i; 8]) -> [__m256i; 8] {
        let a0 = _mm256_unpacklo_epi32(r[0], r[1]);
        let a1 = _mm256_unpackhi_epi32(r[0], r[1]);
        let a2 = _mm256_unpacklo_epi32(r[2], r[3]);
        let a3 = _mm256_unpackhi_epi32(r[2], r[3]);
        let a4 = _mm256_unpacklo_epi32(r[4], r[5]);
        let a5 = _mm256_unpackhi_epi32(r[4], r[5]);
        let a6 = _mm256_unpacklo_epi32(r[6], r[7]);
        let a7 = _mm256_unpackhi_epi32(r[6], r[7]);
        let b0 = _mm256_unpacklo_epi64(a0, a2);
        let b1 = _mm256_unpackhi_epi64(a0, a2);
        let b2 = _mm256_unpacklo_epi64(a1, a3);
        let b3 = _mm256_unpackhi_epi64(a1, a3);
        let b4 = _mm256_unpacklo_epi64(a4, a6);
        let b5 = _mm256_unpackhi_epi64(a4, a6);
        let b6 = _mm256_unpacklo_epi64(a5, a7);
        let b7 = _mm256_unpackhi_epi64(a5, a7);
        [
            _mm256_permute2x128_si256::<0x20>(b0, b4),
            _mm256_permute2x128_si256::<0x20>(b1, b5),
            _mm256_permute2x128_si256::<0x20>(b2, b6),
            _mm256_permute2x128_si256::<0x20>(b3, b7),
            _mm256_permute2x128_si256::<0x31>(b0, b4),
            _mm256_permute2x128_si256::<0x31>(b1, b5),
            _mm256_permute2x128_si256::<0x31>(b2, b6),
            _mm256_permute2x128_si256::<0x31>(b3, b7),
        ]
    }

    /// Permute + feed-forward + transpose, all in vector registers:
    /// returns `[lane][half]`, where half `h` holds lane words
    /// `8h..8h + 8` (32 contiguous keystream bytes).
    #[target_feature(enable = "avx2")]
    fn keystream_tiles(init: &Wide8State) -> [[__m256i; 2]; WIDE_LANES] {
        let r16 = rot16_mask();
        let r8 = rot8_mask();
        let mut x: [__m256i; 16] = std::array::from_fn(|w| load(&init[w]));
        macro_rules! rotl {
            ($v:expr, $n:literal) => {
                _mm256_or_si256(_mm256_slli_epi32::<$n>($v), _mm256_srli_epi32::<{ 32 - $n }>($v))
            };
        }
        macro_rules! quarter {
            ($a:literal, $b:literal, $c:literal, $d:literal) => {
                x[$a] = _mm256_add_epi32(x[$a], x[$b]);
                x[$d] = _mm256_shuffle_epi8(_mm256_xor_si256(x[$d], x[$a]), r16);
                x[$c] = _mm256_add_epi32(x[$c], x[$d]);
                x[$b] = rotl!(_mm256_xor_si256(x[$b], x[$c]), 12);
                x[$a] = _mm256_add_epi32(x[$a], x[$b]);
                x[$d] = _mm256_shuffle_epi8(_mm256_xor_si256(x[$d], x[$a]), r8);
                x[$c] = _mm256_add_epi32(x[$c], x[$d]);
                x[$b] = rotl!(_mm256_xor_si256(x[$b], x[$c]), 7);
            };
        }
        for _ in 0..10 {
            // Column rounds.
            quarter!(0, 4, 8, 12);
            quarter!(1, 5, 9, 13);
            quarter!(2, 6, 10, 14);
            quarter!(3, 7, 11, 15);
            // Diagonal rounds.
            quarter!(0, 5, 10, 15);
            quarter!(1, 6, 11, 12);
            quarter!(2, 7, 8, 13);
            quarter!(3, 4, 9, 14);
        }
        for w in 0..16 {
            x[w] = _mm256_add_epi32(x[w], load(&init[w]));
        }
        let lo = transpose8([x[0], x[1], x[2], x[3], x[4], x[5], x[6], x[7]]);
        let hi = transpose8([x[8], x[9], x[10], x[11], x[12], x[13], x[14], x[15]]);
        std::array::from_fn(|l| [lo[l], hi[l]])
    }

    #[target_feature(enable = "avx2")]
    #[allow(unsafe_code)]
    fn wide_core_impl(init: &Wide8State, out: &mut [[u32; 16]; WIDE_LANES]) {
        let tiles = keystream_tiles(init);
        for (lane_words, lane_tiles) in out.iter_mut().zip(tiles) {
            for (half, v) in lane_tiles.into_iter().enumerate() {
                // SAFETY: `lane_words[8 * half..8 * half + 8]` is 32
                // valid, exclusively borrowed bytes; `_mm256_storeu_si256`
                // has no alignment requirement.
                unsafe {
                    _mm256_storeu_si256(lane_words[8 * half..].as_mut_ptr().cast::<__m256i>(), v);
                }
            }
        }
    }

    #[target_feature(enable = "avx2")]
    #[allow(unsafe_code)]
    fn xor_stripes_impl(init: &Wide8State, flat: &mut [u8], first: usize, stride: usize) {
        debug_assert!(stride >= BLOCK_LEN, "lanes must not overlap");
        let tiles = keystream_tiles(init);
        for (lane, lane_tiles) in tiles.into_iter().enumerate() {
            let chunk = &mut flat[first + lane * stride..][..BLOCK_LEN];
            for (half, v) in lane_tiles.into_iter().enumerate() {
                let sub = &mut chunk[32 * half..32 * half + 32];
                // SAFETY: `sub` is 32 valid, exclusively borrowed bytes;
                // the unaligned load/store intrinsics have no alignment
                // requirement.
                unsafe {
                    let ptr = sub.as_mut_ptr().cast::<__m256i>();
                    _mm256_storeu_si256(ptr, _mm256_xor_si256(_mm256_loadu_si256(ptr), v));
                }
            }
        }
    }

    /// Runtime guard shared by the public wrappers: proves to the
    /// `unsafe` call sites that every instruction the AVX2 bodies may
    /// use is supported. `is_x86_feature_detected!` caches its CPUID
    /// result, so this is one relaxed atomic load per pass.
    fn assert_avx2() {
        assert!(
            std::arch::is_x86_feature_detected!("avx2"),
            "chacha::avx2 entered on a CPU without AVX2 (dispatch bug)"
        );
    }

    /// Permutes 8 interleaved blocks into lane-major keystream words.
    #[allow(unsafe_code)]
    pub(super) fn wide_core(init: &Wide8State, out: &mut [[u32; 16]; WIDE_LANES]) {
        assert_avx2();
        // SAFETY: `assert_avx2` above verified AVX2 support at runtime.
        unsafe { wide_core_impl(init, out) }
    }

    /// XORs lane `l`'s keystream block into the 64-byte region at
    /// `flat[first + l * stride..]`, keeping the data in vector
    /// registers end to end (permute, feed-forward, transpose, XOR).
    #[allow(unsafe_code)]
    pub(super) fn xor_stripes(init: &Wide8State, flat: &mut [u8], first: usize, stride: usize) {
        assert_avx2();
        // SAFETY: `assert_avx2` above verified AVX2 support at runtime.
        unsafe { xor_stripes_impl(init, flat, first, stride) }
    }
}

/// Builds a wide initial state: constants and key splatted across the
/// lanes, per-lane counters in word 12, per-lane nonces in words 13–15.
/// Batch loops build this once and only rewrite word 12 between passes.
#[inline]
fn wide_init<const L: usize>(
    key: &[u8; KEY_LEN],
    counters: &[u32; L],
    nonces: &[&[u8; NONCE_LEN]; L],
) -> [[u32; L]; 16] {
    let mut init = [[0u32; L]; 16];
    for (w, c) in CONSTANTS.iter().enumerate() {
        init[w] = [*c; L];
    }
    for (i, chunk) in key.chunks_exact(4).enumerate() {
        let word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        init[4 + i] = [word; L];
    }
    init[12] = *counters;
    for (l, nonce) in nonces.iter().enumerate() {
        for (i, chunk) in nonce.chunks_exact(4).enumerate() {
            init[13 + i][l] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
    }
    init
}

/// Permutes the 4 interleaved blocks of `init` and returns the keystream
/// as lane-major `u32` words (feed-forward included), dispatching on the
/// resolved tier: SSE2 intrinsics at [`IsaTier::Sse2`] and above,
/// otherwise the portable core.
#[inline]
fn wide4_words_from_init(tier: IsaTier, init: &Wide4State) -> [[u32; 16]; LANES4] {
    #[cfg(all(target_arch = "x86_64", target_feature = "sse2"))]
    if tier >= IsaTier::Sse2 {
        let mut out = [[0u32; 16]; LANES4];
        sse2::wide_core(init, &mut out);
        return out;
    }
    let _ = tier; // portable fallback (non-x86 targets / forced tier)
    lane_major(&wide_core_portable(init))
}

/// XORs each lane's 64-byte keystream block straight into `lanes[l]`
/// (which must be exactly [`BLOCK_LEN`] bytes). On the SSE2 tier the data
/// rides vector registers end to end: permute, feed-forward, transpose,
/// XOR.
#[inline]
fn wide4_xor_lanes(tier: IsaTier, init: &Wide4State, lanes: [&mut [u8]; LANES4]) {
    #[cfg(all(target_arch = "x86_64", target_feature = "sse2"))]
    if tier >= IsaTier::Sse2 {
        sse2::xor_lanes(init, lanes);
        return;
    }
    let _ = tier; // portable fallback (non-x86 targets / forced tier)
    let words = lane_major(&wide_core_portable(init));
    for (lane, lane_words) in lanes.into_iter().zip(&words) {
        xor_full_block(lane, lane_words);
    }
}

/// Reborrows 4 equal-length disjoint regions of `flat`, starting at
/// `first` and separated by `stride` bytes (`len <= stride`).
#[inline]
fn lanes_mut(flat: &mut [u8], first: usize, stride: usize, len: usize) -> [&mut [u8]; LANES4] {
    let (_, tail) = flat.split_at_mut(first);
    let (c0, tail) = tail.split_at_mut(stride);
    let (c1, tail) = tail.split_at_mut(stride);
    let (c2, tail) = tail.split_at_mut(stride);
    [&mut c0[..len], &mut c1[..len], &mut c2[..len], &mut tail[..len]]
}

/// Runs the 4-lane wide core once: lane `l` computes the keystream block
/// for (`counters[l]`, `nonces[l]`) under `key`. Returns the keystream as
/// lane-major `u32` words (lane `l`, word `w` — already including the
/// final feed-forward addition), ready to XOR or serialize.
#[inline]
fn wide4_keystream_words(
    tier: IsaTier,
    key: &[u8; KEY_LEN],
    counters: &[u32; LANES4],
    nonces: &[&[u8; NONCE_LEN]; LANES4],
) -> [[u32; 16]; LANES4] {
    wide4_words_from_init(tier, &wide_init(key, counters, nonces))
}

/// Serializes lane-major keystream words to little-endian blocks.
fn serialize_blocks<const L: usize>(words: &[[u32; 16]; L]) -> [[u8; BLOCK_LEN]; L] {
    let mut out = [[0u8; BLOCK_LEN]; L];
    for (lane, lane_words) in out.iter_mut().zip(words) {
        for (i, word) in lane_words.iter().enumerate() {
            lane[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
    }
    out
}

/// Computes 4 keystream blocks in one interleaved pass: output `l` is
/// [`block`]`(key, counters[l], nonces[l])`. One 4-lane group of the
/// batch one-time-key derivation ([`blocks_each`]).
pub fn blocks4(
    key: &[u8; KEY_LEN],
    counters: &[u32; 4],
    nonces: &[&[u8; NONCE_LEN]; 4],
) -> [[u8; BLOCK_LEN]; 4] {
    let tier = isa::tier();
    serialize_blocks(&wide4_keystream_words(tier, key, counters, nonces))
}

/// Computes [`WIDE_LANES`] = 8 keystream blocks: output `l` is
/// [`block`]`(key, counters[l], nonces[l])`. On the AVX2 tier this is one
/// 8-lane pass; on every other tier it decomposes into two byte-identical
/// 4-lane passes, so callers (batch one-time-key derivation, the bulk
/// CSPRNG refill) can group by 8 unconditionally.
pub fn blocks8(
    key: &[u8; KEY_LEN],
    counters: &[u32; WIDE_LANES],
    nonces: &[&[u8; NONCE_LEN]; WIDE_LANES],
) -> [[u8; BLOCK_LEN]; WIDE_LANES] {
    let tier = isa::tier();
    #[cfg(all(target_arch = "x86_64", target_feature = "sse2"))]
    if tier == IsaTier::Avx2 {
        let init = wide_init(key, counters, nonces);
        let mut words = [[0u32; 16]; WIDE_LANES];
        avx2::wide_core(&init, &mut words);
        return serialize_blocks(&words);
    }
    let mut out = [[0u8; BLOCK_LEN]; WIDE_LANES];
    for half in 0..2 {
        let c: [u32; LANES4] = std::array::from_fn(|l| counters[LANES4 * half + l]);
        let n: [&[u8; NONCE_LEN]; LANES4] = std::array::from_fn(|l| nonces[LANES4 * half + l]);
        let blocks = serialize_blocks(&wide4_keystream_words(tier, key, &c, &n));
        out[LANES4 * half..LANES4 * (half + 1)].copy_from_slice(&blocks);
    }
    out
}

/// Computes one keystream block per (counter, nonce) pair: `out[i]` is
/// [`block`]`(key, counters[i], nonces[i])` for any pair count,
/// decomposed into 8-lane passes ([`blocks8`]), a 4-lane pass, and a
/// scalar tail. This is the shape the batch tag paths use to derive one
/// Poly1305 one-time key per cell.
///
/// # Panics
/// Panics if `counters`, `nonces` and `out` differ in length.
pub fn blocks_each(
    key: &[u8; KEY_LEN],
    counters: &[u32],
    nonces: &[&[u8; NONCE_LEN]],
    out: &mut [[u8; BLOCK_LEN]],
) {
    assert_eq!(counters.len(), nonces.len(), "one counter per nonce");
    assert_eq!(out.len(), nonces.len(), "one output block per nonce");
    let mut i = 0;
    while i + WIDE_LANES <= nonces.len() {
        let c: [u32; WIDE_LANES] = counters[i..i + WIDE_LANES].try_into().expect("8 counters");
        let n: [&[u8; NONCE_LEN]; WIDE_LANES] = std::array::from_fn(|l| nonces[i + l]);
        out[i..i + WIDE_LANES].copy_from_slice(&blocks8(key, &c, &n));
        i += WIDE_LANES;
    }
    while i + LANES4 <= nonces.len() {
        let c: [u32; LANES4] = counters[i..i + LANES4].try_into().expect("4 counters");
        let n: [&[u8; NONCE_LEN]; LANES4] = std::array::from_fn(|l| nonces[i + l]);
        out[i..i + LANES4].copy_from_slice(&blocks4(key, &c, &n));
        i += LANES4;
    }
    for j in i..nonces.len() {
        out[j] = block(key, counters[j], nonces[j]);
    }
}

/// XORs one full 64-byte block with precomputed keystream words.
#[inline(always)]
fn xor_full_block(chunk: &mut [u8], words: &[u32; 16]) {
    for (i, word) in words.iter().enumerate() {
        let lane = &mut chunk[4 * i..4 * i + 4];
        let mixed = u32::from_le_bytes(lane.try_into().expect("4-byte lane")) ^ word;
        lane.copy_from_slice(&mixed.to_le_bytes());
    }
}

/// XORs a sub-block tail with precomputed keystream words.
#[inline(always)]
fn xor_partial_block(tail: &mut [u8], words: &[u32; 16]) {
    for (i, byte) in tail.iter_mut().enumerate() {
        *byte ^= words[i / 4].to_le_bytes()[i % 4];
    }
}

/// Computes one 64-byte ChaCha20 keystream block for the given key, block
/// counter and nonce (RFC 8439 §2.3).
pub fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; BLOCK_LEN] {
    let mut state = init_state(key, nonce);
    state[12] = counter;
    let mut working = state;
    permute(&mut working);

    let mut out = [0u8; BLOCK_LEN];
    for (i, word) in working.iter().enumerate() {
        let sum = word.wrapping_add(state[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&sum.to_le_bytes());
    }
    out
}

/// XORs `data` in place with the ChaCha20 keystream starting at block
/// `counter`. This is both encryption and decryption (RFC 8439 §2.4).
///
/// Fast paths, widest first: on the AVX2 tier, runs of 8 full blocks go
/// through the 8-lane core (8 consecutive counters permuted per pass);
/// runs of 4 full blocks go through the 4-lane core; the 1–3 block
/// remainder keeps the scalar single-parse path, and only a sub-block
/// tail falls back to byte granularity. Output is byte-identical for
/// every length on every tier.
pub fn xor_keystream(
    key: &[u8; KEY_LEN],
    mut counter: u32,
    nonce: &[u8; NONCE_LEN],
    data: &mut [u8],
) {
    let tier = isa::tier();
    let mut rest: &mut [u8] = data;
    #[cfg(all(target_arch = "x86_64", target_feature = "sse2"))]
    if tier == IsaTier::Avx2 {
        let stripe = WIDE_LANES * BLOCK_LEN;
        let full = rest.len() / stripe * stripe;
        if full > 0 {
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(full);
            rest = tail;
            // Parse key and nonce into the wide state once; only the
            // counter word changes between passes.
            let mut init = wide_init(key, &[0; WIDE_LANES], &[nonce; WIDE_LANES]);
            for chunk in head.chunks_exact_mut(stripe) {
                init[12] = std::array::from_fn(|l| counter.wrapping_add(l as u32));
                avx2::xor_stripes(&init, chunk, 0, BLOCK_LEN);
                counter = counter.wrapping_add(WIDE_LANES as u32);
            }
        }
    }
    let mut quads = rest.chunks_exact_mut(LANES4 * BLOCK_LEN);
    if quads.len() > 0 {
        let mut init = wide_init(key, &[0; LANES4], &[nonce; LANES4]);
        for quad in &mut quads {
            init[12] = [
                counter,
                counter.wrapping_add(1),
                counter.wrapping_add(2),
                counter.wrapping_add(3),
            ];
            wide4_xor_lanes(tier, &init, lanes_mut(quad, 0, BLOCK_LEN, BLOCK_LEN));
            counter = counter.wrapping_add(LANES4 as u32);
        }
    }
    let rest = quads.into_remainder();
    if rest.is_empty() {
        return;
    }
    let mut state = init_state(key, nonce);
    let mut chunks = rest.chunks_exact_mut(BLOCK_LEN);
    for chunk in &mut chunks {
        state[12] = counter;
        let mut working = state;
        permute(&mut working);
        for (i, word) in working.iter().enumerate() {
            let ks = word.wrapping_add(state[i]);
            let lane = &mut chunk[4 * i..4 * i + 4];
            let mixed = u32::from_le_bytes(lane.try_into().expect("4-byte lane")) ^ ks;
            lane.copy_from_slice(&mixed.to_le_bytes());
        }
        counter = counter.wrapping_add(1);
    }
    let tail = chunks.into_remainder();
    if !tail.is_empty() {
        state[12] = counter;
        let mut working = state;
        permute(&mut working);
        for (i, byte) in tail.iter_mut().enumerate() {
            let ks = working[i / 4].wrapping_add(state[i / 4]);
            *byte ^= ks.to_le_bytes()[i % 4];
        }
    }
}

/// XORs one equal-length region of many cells with per-cell keystreams in
/// one call: cell `i` occupies `flat[i * stride..(i + 1) * stride]`, and
/// its region `[offset, offset + len)` is XORed with the keystream of
/// (`key`, `counter`, `nonces[i]`) — exactly what a [`xor_keystream`] loop
/// over the cells would do, byte for byte.
///
/// This is the batch re-encryption fast path: when `len` is shorter than
/// the active tier's full stripe (8 or 4 blocks), that many *different*
/// cells' keystreams are permuted per pass (same block index, one nonce
/// per lane), so short-cell batches vectorize as well as long streams.
/// Longer cells instead use the intra-cell wide path of
/// [`xor_keystream`], which is equally wide. Group remainders step down
/// 8 → 4 → scalar, so every cell count vectorizes as far as it can.
///
/// # Panics
/// Panics if `flat.len() != nonces.len() * stride` or
/// `offset + len > stride`.
pub fn xor_keystream_batch_strided(
    key: &[u8; KEY_LEN],
    counter: u32,
    nonces: &[Nonce],
    flat: &mut [u8],
    stride: usize,
    offset: usize,
    len: usize,
) {
    assert_eq!(flat.len(), nonces.len() * stride, "flat must hold one stride per nonce");
    assert!(offset + len <= stride, "cell region must fit its stride");
    if len == 0 || nonces.is_empty() {
        return;
    }
    let tier = isa::tier();
    let group_lanes = if tier == IsaTier::Avx2 { WIDE_LANES } else { LANES4 };
    if len >= group_lanes * BLOCK_LEN {
        // Long cells: each cell's own keystream already fills the widest
        // core the tier offers.
        for (i, nonce) in nonces.iter().enumerate() {
            let base = i * stride + offset;
            xor_keystream(key, counter, nonce, &mut flat[base..base + len]);
        }
        return;
    }
    let full_blocks = len / BLOCK_LEN;
    let tail = len % BLOCK_LEN;
    let mut cell = 0;
    #[cfg(all(target_arch = "x86_64", target_feature = "sse2"))]
    if tier == IsaTier::Avx2 {
        while cell + WIDE_LANES <= nonces.len() {
            let lane_nonces: [&Nonce; WIDE_LANES] = std::array::from_fn(|l| &nonces[cell + l]);
            // One state parse per 8-cell group; only the counter word
            // changes between block indices.
            let mut init = wide_init(key, &[counter; WIDE_LANES], &lane_nonces);
            for j in 0..full_blocks {
                init[12] = [counter.wrapping_add(j as u32); WIDE_LANES];
                let first = cell * stride + offset + j * BLOCK_LEN;
                avx2::xor_stripes(&init, flat, first, stride);
            }
            if tail > 0 {
                init[12] = [counter.wrapping_add(full_blocks as u32); WIDE_LANES];
                let mut words = [[0u32; 16]; WIDE_LANES];
                avx2::wide_core(&init, &mut words);
                for (l, lane_words) in words.iter().enumerate() {
                    let base = (cell + l) * stride + offset + full_blocks * BLOCK_LEN;
                    xor_partial_block(&mut flat[base..base + tail], lane_words);
                }
            }
            cell += WIDE_LANES;
        }
    }
    while cell + LANES4 <= nonces.len() {
        let lane_nonces = [&nonces[cell], &nonces[cell + 1], &nonces[cell + 2], &nonces[cell + 3]];
        // One state parse per 4-cell group; only the counter word changes
        // between block indices.
        let mut init = wide_init(key, &[counter; LANES4], &lane_nonces);
        for j in 0..full_blocks {
            init[12] = [counter.wrapping_add(j as u32); LANES4];
            let first = cell * stride + offset + j * BLOCK_LEN;
            wide4_xor_lanes(tier, &init, lanes_mut(flat, first, stride, BLOCK_LEN));
        }
        if tail > 0 {
            init[12] = [counter.wrapping_add(full_blocks as u32); LANES4];
            let words = wide4_words_from_init(tier, &init);
            for (l, lane_words) in words.iter().enumerate() {
                let base = (cell + l) * stride + offset + full_blocks * BLOCK_LEN;
                xor_partial_block(&mut flat[base..base + tail], lane_words);
            }
        }
        cell += LANES4;
    }
    for (i, nonce) in nonces.iter().enumerate().skip(cell) {
        let base = i * stride + offset;
        xor_keystream(key, counter, nonce, &mut flat[base..base + len]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// RFC 8439 §2.3.2: ChaCha20 block function test vector.
    #[test]
    fn rfc8439_block_vector() {
        let key: [u8; 32] = hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
            .try_into()
            .unwrap();
        let nonce: [u8; 12] = hex("000000090000004a00000000").try_into().unwrap();
        let expected = hex("10f1e7e4d13b5915500fdd1fa32071c4 c7d1f4c733c068030422aa9ac3d46c4e
             d2826446079faa0914c2d705d98b02a2 b5129cd1de164eb9cbd083e8a2503c4e");
        assert_eq!(block(&key, 1, &nonce).to_vec(), expected);
    }

    /// RFC 8439 §2.4.2: ChaCha20 encryption test vector.
    #[test]
    fn rfc8439_encrypt_vector() {
        let key: [u8; 32] = hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
            .try_into()
            .unwrap();
        let nonce: [u8; 12] = hex("000000000000004a00000000").try_into().unwrap();
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it."
            .to_vec();
        xor_keystream(&key, 1, &nonce, &mut data);
        let expected = hex("6e2e359a2568f98041ba0728dd0d6981 e97e7aec1d4360c20a27afccfd9fae0b
             f91b65c5524733ab8f593dabcd62b357 1639d624e65152ab8f530c359f0861d8
             07ca0dbf500d6a6156a38e088a22b65e 52bc514d16ccf806818ce91ab7793736
             5af90bbf74a35be6b40b8eedf2785e42 874d");
        assert_eq!(data, expected);
    }

    /// Round-trip: XORing twice with the same keystream restores the input.
    #[test]
    fn keystream_round_trip() {
        let key = [7u8; 32];
        let nonce = [3u8; 12];
        let original: Vec<u8> = (0..=255).collect();
        let mut data = original.clone();
        xor_keystream(&key, 0, &nonce, &mut data);
        assert_ne!(data, original);
        xor_keystream(&key, 0, &nonce, &mut data);
        assert_eq!(data, original);
    }

    /// Distinct counters produce distinct keystream blocks.
    #[test]
    fn counter_separates_blocks() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        assert_ne!(block(&key, 0, &nonce), block(&key, 1, &nonce));
    }

    /// Distinct nonces produce distinct keystream blocks.
    #[test]
    fn nonce_separates_blocks() {
        let key = [1u8; 32];
        assert_ne!(block(&key, 0, &[0u8; 12]), block(&key, 0, &[1u8; 12]));
    }

    /// An asymmetric per-lane test state: every word of every lane
    /// differs, so transpose bugs cannot cancel.
    fn asymmetric_init<const L: usize>() -> [[u32; L]; 16] {
        let mut init = [[0u32; L]; 16];
        for (w, row) in init.iter_mut().enumerate() {
            for (l, v) in row.iter_mut().enumerate() {
                *v = (w as u32).wrapping_mul(0x9e37_79b9) ^ (l as u32) << 13;
            }
        }
        init
    }

    /// The portable and SSE2 4-lane cores compute identical feed-forward
    /// sums for asymmetric per-lane states.
    #[test]
    fn wide_cores_agree() {
        let init: Wide4State = asymmetric_init();
        let portable_lane_major = lane_major(&wide_core_portable(&init));
        #[cfg(all(target_arch = "x86_64", target_feature = "sse2"))]
        {
            let mut dispatched = [[0u32; 16]; LANES4];
            sse2::wide_core(&init, &mut dispatched);
            assert_eq!(portable_lane_major, dispatched);
        }
        // Sanity even where only the portable core exists: the sum differs
        // from the raw input (the permutation actually ran).
        assert_ne!(portable_lane_major[0][0], init[0][0]);
    }

    /// The portable 8-lane and AVX2 cores compute identical feed-forward
    /// sums for asymmetric per-lane states (skipped where the CPU lacks
    /// AVX2; the portable side still runs as a compile check).
    #[test]
    fn wide8_cores_agree() {
        let init: [[u32; WIDE_LANES]; 16] = asymmetric_init();
        let portable_lane_major = lane_major(&wide_core_portable(&init));
        #[cfg(all(target_arch = "x86_64", target_feature = "sse2"))]
        if std::arch::is_x86_feature_detected!("avx2") {
            let mut dispatched = [[0u32; 16]; WIDE_LANES];
            avx2::wide_core(&init, &mut dispatched);
            assert_eq!(portable_lane_major, dispatched);
        }
        assert_ne!(portable_lane_major[0][0], init[0][0]);
    }

    /// RFC 8439 §2.3.2 through the wide cores: every lane of [`blocks4`]
    /// and [`blocks8`] reproduces the published block when fed the
    /// vector's inputs, and mixed-lane calls agree with the scalar core
    /// lane by lane.
    #[test]
    fn rfc8439_block_vector_wide_lanes() {
        let key: [u8; 32] = hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
            .try_into()
            .unwrap();
        let nonce: [u8; 12] = hex("000000090000004a00000000").try_into().unwrap();
        let expected = block(&key, 1, &nonce);
        let all4 = blocks4(&key, &[1; 4], &[&nonce; 4]);
        for (l, lane) in all4.iter().enumerate() {
            assert_eq!(lane, &expected, "blocks4 lane {l}");
        }
        let all8 = blocks8(&key, &[1; WIDE_LANES], &[&nonce; WIDE_LANES]);
        for (l, lane) in all8.iter().enumerate() {
            assert_eq!(lane, &expected, "blocks8 lane {l}");
        }
        // Mixed counters and nonces: each lane must match its scalar twin.
        let other_nonce = [7u8; 12];
        let counters = [0u32, 1, u32::MAX, 5];
        let nonces = [&nonce, &other_nonce, &nonce, &other_nonce];
        let mixed = blocks4(&key, &counters, &nonces);
        for l in 0..4 {
            assert_eq!(mixed[l], block(&key, counters[l], nonces[l]), "lane {l}");
        }
        let counters8 = [0u32, 1, u32::MAX, 5, 2, u32::MAX - 1, 9, 1 << 30];
        let nonces8 = [
            &nonce,
            &other_nonce,
            &nonce,
            &other_nonce,
            &other_nonce,
            &nonce,
            &other_nonce,
            &nonce,
        ];
        let mixed8 = blocks8(&key, &counters8, &nonces8);
        for l in 0..WIDE_LANES {
            assert_eq!(mixed8[l], block(&key, counters8[l], nonces8[l]), "lane {l}");
        }
    }

    /// [`blocks_each`] equals a scalar [`block`] loop for every count,
    /// covering the 8-lane groups, the 4-lane group and the scalar tail.
    #[test]
    fn blocks_each_matches_scalar_loop() {
        let key = [0x21u8; 32];
        for count in 0..=20usize {
            let nonce_bufs: Vec<Nonce> = (0..count)
                .map(|i| {
                    let mut n = [0u8; NONCE_LEN];
                    n[0] = i as u8;
                    n[7] = 0x30 | i as u8;
                    n
                })
                .collect();
            let nonces: Vec<&Nonce> = nonce_bufs.iter().collect();
            let counters: Vec<u32> = (0..count).map(|i| i as u32 * 3).collect();
            let mut out = vec![[0u8; BLOCK_LEN]; count];
            blocks_each(&key, &counters, &nonces, &mut out);
            for i in 0..count {
                assert_eq!(out[i], block(&key, counters[i], nonces[i]), "count {count} lane {i}");
            }
        }
    }

    /// RFC 8439 §2.4.2 through the wide batch path: eight cells each
    /// holding the RFC plaintext, encrypted per-cell at counter 1 under
    /// the RFC nonce, must all equal the published ciphertext.
    #[test]
    fn rfc8439_encrypt_vector_wide_batch() {
        let key: [u8; 32] = hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
            .try_into()
            .unwrap();
        let nonce: [u8; 12] = hex("000000000000004a00000000").try_into().unwrap();
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";
        let expected = {
            let mut data = plaintext.to_vec();
            xor_keystream(&key, 1, &nonce, &mut data);
            data
        };
        let stride = plaintext.len();
        let cells = WIDE_LANES;
        let mut flat: Vec<u8> = plaintext.iter().copied().cycle().take(cells * stride).collect();
        xor_keystream_batch_strided(&key, 1, &[nonce; WIDE_LANES], &mut flat, stride, 0, stride);
        for (l, cell) in flat.chunks(stride).enumerate() {
            assert_eq!(cell, expected.as_slice(), "cell {l}");
        }
    }

    /// The wide multi-block fast path agrees with a scalar per-block
    /// reference across every length class (empty, sub-block, block
    /// boundaries, 4- and 8-block stripe boundaries, long).
    #[test]
    fn wide_keystream_matches_scalar_reference() {
        let key = [0x42u8; 32];
        let nonce = [9u8; 12];
        for len in
            [0usize, 1, 63, 64, 65, 127, 128, 255, 256, 257, 320, 511, 512, 513, 767, 960, 1024]
        {
            let original: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            let mut data = original.clone();
            xor_keystream(&key, 7, &nonce, &mut data);
            // Scalar reference: XOR block-by-block via `block`.
            let mut expected = original.clone();
            for (j, chunk) in expected.chunks_mut(BLOCK_LEN).enumerate() {
                let ks = block(&key, 7 + j as u32, &nonce);
                for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                    *b ^= k;
                }
            }
            assert_eq!(data, expected, "len {len}");
        }
    }

    /// Counter wraparound behaves identically on the wide and scalar
    /// paths, through both the 8- and 4-block stripe stages.
    #[test]
    fn wide_keystream_counter_wraps() {
        let key = [3u8; 32];
        let nonce = [1u8; 12];
        for blocks in [6usize, 13] {
            let mut wide = vec![0u8; blocks * BLOCK_LEN];
            xor_keystream(&key, u32::MAX - 1, &nonce, &mut wide);
            let mut scalar = vec![0u8; blocks * BLOCK_LEN];
            for (j, chunk) in scalar.chunks_mut(BLOCK_LEN).enumerate() {
                let ks = block(&key, (u32::MAX - 1).wrapping_add(j as u32), &nonce);
                chunk.copy_from_slice(&ks);
            }
            assert_eq!(wide, scalar, "blocks {blocks}");
        }
    }

    /// The strided batch path equals a per-cell loop for every cell count
    /// (covering all remainders mod 8 and mod 4) and offset/length
    /// combination.
    #[test]
    fn batch_strided_matches_per_cell_loop() {
        let key = [0x5au8; 32];
        for cells in [1usize, 2, 3, 4, 5, 7, 8, 9, 11, 12, 13, 15, 16, 17] {
            for (stride, offset, len) in [
                (80usize, 12usize, 64usize),
                (48, 0, 48),
                (100, 12, 77),
                (300, 12, 280),
                (600, 20, 513),
                (16, 4, 0),
            ] {
                let nonces: Vec<Nonce> = (0..cells)
                    .map(|i| {
                        let mut n = [0u8; NONCE_LEN];
                        n[0] = i as u8;
                        n[5] = 0xA0 | i as u8;
                        n
                    })
                    .collect();
                let original: Vec<u8> = (0..cells * stride).map(|i| (i * 13 % 251) as u8).collect();
                let mut batch = original.clone();
                xor_keystream_batch_strided(&key, 1, &nonces, &mut batch, stride, offset, len);
                let mut expected = original.clone();
                for (i, nonce) in nonces.iter().enumerate() {
                    let base = i * stride + offset;
                    xor_keystream(&key, 1, nonce, &mut expected[base..base + len]);
                }
                assert_eq!(
                    batch, expected,
                    "cells {cells} stride {stride} offset {offset} len {len}"
                );
            }
        }
    }
}
