//! The ChaCha20 stream cipher core (RFC 8439).
//!
//! This is the single primitive from which both the IND-CPA cipher
//! ([`crate::cipher`]) and the deterministic CSPRNG ([`crate::rng`]) are
//! built. The implementation follows RFC 8439 §2.3 exactly and is verified
//! against the RFC's test vectors.
//!
//! Two permutation cores share the RFC semantics:
//!
//! * the scalar core ([`block`]) permutes one 64-byte block at a time;
//! * the **wide core** permutes [`WIDE_LANES`] = 4 independent blocks per
//!   pass in a structure-of-arrays state (`[[u32; 4]; 16]`, word-major) so
//!   every quarter-round step is a 4-iteration loop over `[u32; 4]` lanes
//!   that LLVM auto-vectorizes to 128-bit SIMD on any baseline x86-64 /
//!   aarch64 target — no unstable SIMD APIs, no `unsafe`.
//!
//! The wide core backs [`xor_keystream`] (4 consecutive counters of one
//! stream) and [`xor_keystream_batch_strided`] (one block each of 4
//! *different* nonce streams, the shape batch re-encryption of short cells
//! produces). Both are byte-identical to the scalar core: the lanes compute
//! exactly the blocks the scalar loop would, in the same positions.

/// Size of a ChaCha20 key in bytes.
pub const KEY_LEN: usize = 32;
/// Size of a ChaCha20 nonce in bytes (IETF variant).
pub const NONCE_LEN: usize = 12;
/// A ChaCha20 nonce: the per-cell randomness unit the batch-crypto helpers
/// pre-draw on the caller thread before fanning work across a pool.
pub type Nonce = [u8; NONCE_LEN];
/// Size of one keystream block in bytes.
pub const BLOCK_LEN: usize = 64;
/// Number of independent blocks the wide core permutes per pass.
pub const WIDE_LANES: usize = 4;

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Parses key and nonce into the 16-word initial state (counter word left
/// at 0); shared by [`block`] and [`xor_keystream`] so multi-block calls
/// parse the inputs once.
#[inline(always)]
fn init_state(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN]) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&CONSTANTS);
    for (i, chunk) in key.chunks_exact(4).enumerate() {
        state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
    }
    for (i, chunk) in nonce.chunks_exact(4).enumerate() {
        state[13 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
    }
    state
}

/// The 20 ChaCha rounds (RFC 8439 §2.3).
#[inline(always)]
fn permute(working: &mut [u32; 16]) {
    for _ in 0..10 {
        // Column rounds.
        quarter_round(working, 0, 4, 8, 12);
        quarter_round(working, 1, 5, 9, 13);
        quarter_round(working, 2, 6, 10, 14);
        quarter_round(working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(working, 0, 5, 10, 15);
        quarter_round(working, 1, 6, 11, 12);
        quarter_round(working, 2, 7, 8, 13);
        quarter_round(working, 3, 4, 9, 14);
    }
}

/// The wide core's state: 16 state words × [`WIDE_LANES`] blocks
/// (structure-of-arrays, word-major): `state[w][l]` is word `w` of lane
/// `l`'s block.
type WideState = [[u32; WIDE_LANES]; 16];

/// Portable wide core: permutes 4 interleaved blocks and returns the
/// feed-forward sum `permute(init) + init`, word-major.
///
/// The per-step lane loops are written to auto-vectorize, but current
/// LLVM refuses to build SLP trees through `v4i32` funnel-shift (rotate)
/// nodes, so on x86-64 the [`sse2`] twin below — explicit 128-bit
/// intrinsics, same arithmetic — is used instead. This portable form is
/// the fallback for every other target and the cross-check oracle the
/// `wide_cores_agree` test pins the SSE2 path against.
#[cfg_attr(
    all(target_arch = "x86_64", target_feature = "sse2"),
    allow(dead_code) // only the test oracle on targets with the SSE2 core
)]
fn wide_core_portable(init: &WideState) -> WideState {
    #[derive(Clone, Copy)]
    #[repr(align(16))]
    struct Lane([u32; WIDE_LANES]);

    impl Lane {
        #[inline(always)]
        fn add(self, o: Self) -> Self {
            Lane(std::array::from_fn(|i| self.0[i].wrapping_add(o.0[i])))
        }

        #[inline(always)]
        fn xor_rotl(self, o: Self, n: u32) -> Self {
            Lane(std::array::from_fn(|i| (self.0[i] ^ o.0[i]).rotate_left(n)))
        }
    }

    #[inline(always)]
    fn quarter(a: Lane, b: Lane, c: Lane, d: Lane) -> (Lane, Lane, Lane, Lane) {
        let a = a.add(b);
        let d = d.xor_rotl(a, 16);
        let c = c.add(d);
        let b = b.xor_rotl(c, 12);
        let a = a.add(b);
        let d = d.xor_rotl(a, 8);
        let c = c.add(d);
        let b = b.xor_rotl(c, 7);
        (a, b, c, d)
    }

    let start: [Lane; 16] = std::array::from_fn(|w| Lane(init[w]));
    let [mut x0, mut x1, mut x2, mut x3, mut x4, mut x5, mut x6, mut x7, mut x8, mut x9, mut x10, mut x11, mut x12, mut x13, mut x14, mut x15] =
        start;
    for _ in 0..10 {
        // Column rounds.
        (x0, x4, x8, x12) = quarter(x0, x4, x8, x12);
        (x1, x5, x9, x13) = quarter(x1, x5, x9, x13);
        (x2, x6, x10, x14) = quarter(x2, x6, x10, x14);
        (x3, x7, x11, x15) = quarter(x3, x7, x11, x15);
        // Diagonal rounds.
        (x0, x5, x10, x15) = quarter(x0, x5, x10, x15);
        (x1, x6, x11, x12) = quarter(x1, x6, x11, x12);
        (x2, x7, x8, x13) = quarter(x2, x7, x8, x13);
        (x3, x4, x9, x14) = quarter(x3, x4, x9, x14);
    }
    let end = [x0, x1, x2, x3, x4, x5, x6, x7, x8, x9, x10, x11, x12, x13, x14, x15];
    std::array::from_fn(|w| end[w].add(start[w]).0)
}

/// SSE2 wide core: the x86-64 fast path. SSE2 is part of the x86-64
/// baseline ABI (statically enabled on every rustc x86-64 target unless
/// explicitly disabled, which the `cfg` guard respects), so the lone
/// `unsafe` block below — required only because `#[target_feature]`
/// functions are formally unsafe to call — can never execute an
/// unsupported instruction. All intrinsics used are value operations
/// (no pointers), stable since Rust 1.27.
#[cfg(all(target_arch = "x86_64", target_feature = "sse2"))]
mod sse2 {
    use super::{WideState, WIDE_LANES};
    use std::arch::x86_64::{
        __m128i, _mm_add_epi32, _mm_loadu_si128, _mm_or_si128, _mm_set_epi32, _mm_slli_epi32,
        _mm_srli_epi32, _mm_storeu_si128, _mm_unpackhi_epi32, _mm_unpackhi_epi64,
        _mm_unpacklo_epi32, _mm_unpacklo_epi64, _mm_xor_si128,
    };

    #[target_feature(enable = "sse2")]
    #[inline]
    fn load(w: &[u32; WIDE_LANES]) -> __m128i {
        _mm_set_epi32(w[3] as i32, w[2] as i32, w[1] as i32, w[0] as i32)
    }

    /// Permute + feed-forward + transpose, all in vector registers:
    /// returns `[lane][tile]`, where tile `t` holds lane words
    /// `4t..4t + 4` (16 contiguous keystream bytes).
    #[target_feature(enable = "sse2")]
    fn keystream_tiles(init: &WideState) -> [[__m128i; 4]; WIDE_LANES] {
        macro_rules! rotl {
            ($v:expr, $n:literal) => {
                _mm_or_si128(_mm_slli_epi32::<$n>($v), _mm_srli_epi32::<{ 32 - $n }>($v))
            };
        }
        let mut x: [__m128i; 16] = std::array::from_fn(|w| load(&init[w]));
        macro_rules! quarter {
            ($a:literal, $b:literal, $c:literal, $d:literal) => {
                x[$a] = _mm_add_epi32(x[$a], x[$b]);
                x[$d] = rotl!(_mm_xor_si128(x[$d], x[$a]), 16);
                x[$c] = _mm_add_epi32(x[$c], x[$d]);
                x[$b] = rotl!(_mm_xor_si128(x[$b], x[$c]), 12);
                x[$a] = _mm_add_epi32(x[$a], x[$b]);
                x[$d] = rotl!(_mm_xor_si128(x[$d], x[$a]), 8);
                x[$c] = _mm_add_epi32(x[$c], x[$d]);
                x[$b] = rotl!(_mm_xor_si128(x[$b], x[$c]), 7);
            };
        }
        for _ in 0..10 {
            // Column rounds.
            quarter!(0, 4, 8, 12);
            quarter!(1, 5, 9, 13);
            quarter!(2, 6, 10, 14);
            quarter!(3, 7, 11, 15);
            // Diagonal rounds.
            quarter!(0, 5, 10, 15);
            quarter!(1, 6, 11, 12);
            quarter!(2, 7, 8, 13);
            quarter!(3, 4, 9, 14);
        }
        for w in 0..16 {
            x[w] = _mm_add_epi32(x[w], load(&init[w]));
        }
        let mut out = [[_mm_set_epi32(0, 0, 0, 0); 4]; WIDE_LANES];
        for tile in 0..4 {
            let [r0, r1, r2, r3] = [x[4 * tile], x[4 * tile + 1], x[4 * tile + 2], x[4 * tile + 3]];
            let t0 = _mm_unpacklo_epi32(r0, r1);
            let t1 = _mm_unpackhi_epi32(r0, r1);
            let t2 = _mm_unpacklo_epi32(r2, r3);
            let t3 = _mm_unpackhi_epi32(r2, r3);
            out[0][tile] = _mm_unpacklo_epi64(t0, t2);
            out[1][tile] = _mm_unpackhi_epi64(t0, t2);
            out[2][tile] = _mm_unpacklo_epi64(t1, t3);
            out[3][tile] = _mm_unpackhi_epi64(t1, t3);
        }
        out
    }

    #[target_feature(enable = "sse2")]
    #[allow(unsafe_code)]
    fn wide_core_impl(init: &WideState, out: &mut [[u32; 16]; WIDE_LANES]) {
        let tiles = keystream_tiles(init);
        for (lane_words, lane_tiles) in out.iter_mut().zip(tiles) {
            for (tile, v) in lane_tiles.into_iter().enumerate() {
                // SAFETY: `lane_words[4 * tile..4 * tile + 4]` is 16
                // valid, exclusively borrowed bytes; `_mm_storeu_si128`
                // has no alignment requirement.
                unsafe {
                    _mm_storeu_si128(lane_words[4 * tile..].as_mut_ptr().cast::<__m128i>(), v);
                }
            }
        }
    }

    #[target_feature(enable = "sse2")]
    #[allow(unsafe_code)]
    fn xor_lanes_impl(init: &WideState, lanes: [&mut [u8]; WIDE_LANES]) {
        let tiles = keystream_tiles(init);
        for (lane, lane_tiles) in lanes.into_iter().zip(tiles) {
            assert_eq!(lane.len(), super::BLOCK_LEN, "lane must be one full block");
            for (tile, v) in lane_tiles.into_iter().enumerate() {
                let chunk = &mut lane[16 * tile..16 * tile + 16];
                // SAFETY: `chunk` is 16 valid, exclusively borrowed bytes;
                // the unaligned load/store intrinsics have no alignment
                // requirement.
                unsafe {
                    let ptr = chunk.as_mut_ptr().cast::<__m128i>();
                    _mm_storeu_si128(ptr, _mm_xor_si128(_mm_loadu_si128(ptr), v));
                }
            }
        }
    }

    #[allow(unsafe_code)]
    pub(super) fn wide_core(init: &WideState, out: &mut [[u32; 16]; WIDE_LANES]) {
        // SAFETY: guarded by `cfg(target_feature = "sse2")` above, so the
        // required feature is statically enabled for this compilation.
        unsafe { wide_core_impl(init, out) }
    }

    #[allow(unsafe_code)]
    pub(super) fn xor_lanes(init: &WideState, lanes: [&mut [u8]; WIDE_LANES]) {
        // SAFETY: as for `wide_core` — sse2 is statically enabled here.
        unsafe { xor_lanes_impl(init, lanes) }
    }
}

/// Builds the wide initial state: constants and key splatted across the
/// lanes, per-lane counters in word 12, per-lane nonces in words 13–15.
/// Batch loops build this once and only rewrite word 12 between passes.
#[inline]
fn wide_init(
    key: &[u8; KEY_LEN],
    counters: &[u32; WIDE_LANES],
    nonces: &[&[u8; NONCE_LEN]; WIDE_LANES],
) -> WideState {
    let mut init: WideState = [[0u32; WIDE_LANES]; 16];
    for (w, c) in CONSTANTS.iter().enumerate() {
        init[w] = [*c; WIDE_LANES];
    }
    for (i, chunk) in key.chunks_exact(4).enumerate() {
        let word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        init[4 + i] = [word; WIDE_LANES];
    }
    init[12] = *counters;
    for (l, nonce) in nonces.iter().enumerate() {
        for (i, chunk) in nonce.chunks_exact(4).enumerate() {
            init[13 + i][l] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
    }
    init
}

/// Permutes the 4 interleaved blocks of `init` and returns the keystream
/// as lane-major `u32` words (feed-forward included), dispatching to the
/// fastest core for the target.
#[inline]
fn wide_words_from_init(init: &WideState) -> [[u32; 16]; WIDE_LANES] {
    let mut out = [[0u32; 16]; WIDE_LANES];
    #[cfg(all(target_arch = "x86_64", target_feature = "sse2"))]
    sse2::wide_core(init, &mut out);
    #[cfg(not(all(target_arch = "x86_64", target_feature = "sse2")))]
    {
        let summed = wide_core_portable(init);
        for (w, row) in summed.iter().enumerate() {
            for l in 0..WIDE_LANES {
                out[l][w] = row[l];
            }
        }
    }
    out
}

/// XORs each lane's 64-byte keystream block straight into `lanes[l]`
/// (which must be exactly [`BLOCK_LEN`] bytes). On x86-64 the data rides
/// vector registers end to end: permute, feed-forward, transpose, XOR.
#[inline]
fn wide_xor_lanes(init: &WideState, lanes: [&mut [u8]; WIDE_LANES]) {
    #[cfg(all(target_arch = "x86_64", target_feature = "sse2"))]
    sse2::xor_lanes(init, lanes);
    #[cfg(not(all(target_arch = "x86_64", target_feature = "sse2")))]
    {
        let words = wide_words_from_init(init);
        for (lane, lane_words) in lanes.into_iter().zip(&words) {
            xor_full_block(lane, lane_words);
        }
    }
}

/// Reborrows 4 equal-length disjoint regions of `flat`, starting at
/// `first` and separated by `stride` bytes (`len <= stride`).
#[inline]
fn lanes_mut(flat: &mut [u8], first: usize, stride: usize, len: usize) -> [&mut [u8]; WIDE_LANES] {
    let (_, tail) = flat.split_at_mut(first);
    let (c0, tail) = tail.split_at_mut(stride);
    let (c1, tail) = tail.split_at_mut(stride);
    let (c2, tail) = tail.split_at_mut(stride);
    [&mut c0[..len], &mut c1[..len], &mut c2[..len], &mut tail[..len]]
}

/// Runs the wide core once: lane `l` computes the keystream block for
/// (`counters[l]`, `nonces[l]`) under `key`. Returns the keystream as
/// lane-major `u32` words (lane `l`, word `w` — already including the
/// final feed-forward addition), ready to XOR or serialize.
#[inline]
fn wide_keystream_words(
    key: &[u8; KEY_LEN],
    counters: &[u32; WIDE_LANES],
    nonces: &[&[u8; NONCE_LEN]; WIDE_LANES],
) -> [[u32; 16]; WIDE_LANES] {
    wide_words_from_init(&wide_init(key, counters, nonces))
}

/// Computes [`WIDE_LANES`] keystream blocks in one interleaved pass: output
/// `l` is [`block`]`(key, counters[l], nonces[l])`. Used to derive 4 cells'
/// Poly1305 one-time keys per pass in the batch tag paths.
pub fn blocks4(
    key: &[u8; KEY_LEN],
    counters: &[u32; WIDE_LANES],
    nonces: &[&[u8; NONCE_LEN]; WIDE_LANES],
) -> [[u8; BLOCK_LEN]; WIDE_LANES] {
    let words = wide_keystream_words(key, counters, nonces);
    let mut out = [[0u8; BLOCK_LEN]; WIDE_LANES];
    for (lane, lane_words) in out.iter_mut().zip(&words) {
        for (i, word) in lane_words.iter().enumerate() {
            lane[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
    }
    out
}

/// XORs one full 64-byte block with precomputed keystream words.
#[cfg_attr(
    all(target_arch = "x86_64", target_feature = "sse2"),
    allow(dead_code) // the SSE2 xor_lanes path covers full blocks there
)]
#[inline(always)]
fn xor_full_block(chunk: &mut [u8], words: &[u32; 16]) {
    for (i, word) in words.iter().enumerate() {
        let lane = &mut chunk[4 * i..4 * i + 4];
        let mixed = u32::from_le_bytes(lane.try_into().expect("4-byte lane")) ^ word;
        lane.copy_from_slice(&mixed.to_le_bytes());
    }
}

/// XORs a sub-block tail with precomputed keystream words.
#[inline(always)]
fn xor_partial_block(tail: &mut [u8], words: &[u32; 16]) {
    for (i, byte) in tail.iter_mut().enumerate() {
        *byte ^= words[i / 4].to_le_bytes()[i % 4];
    }
}

/// Computes one 64-byte ChaCha20 keystream block for the given key, block
/// counter and nonce (RFC 8439 §2.3).
pub fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; BLOCK_LEN] {
    let mut state = init_state(key, nonce);
    state[12] = counter;
    let mut working = state;
    permute(&mut working);

    let mut out = [0u8; BLOCK_LEN];
    for (i, word) in working.iter().enumerate() {
        let sum = word.wrapping_add(state[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&sum.to_le_bytes());
    }
    out
}

/// XORs `data` in place with the ChaCha20 keystream starting at block
/// `counter`. This is both encryption and decryption (RFC 8439 §2.4).
///
/// Fast paths: runs of 4 full blocks go through the wide core (4
/// consecutive counters permuted per pass); the 1–3 block remainder keeps
/// the scalar single-parse path, and only a sub-block tail falls back to
/// byte granularity. Output is byte-identical for every length.
pub fn xor_keystream(
    key: &[u8; KEY_LEN],
    mut counter: u32,
    nonce: &[u8; NONCE_LEN],
    data: &mut [u8],
) {
    let mut quads = data.chunks_exact_mut(WIDE_LANES * BLOCK_LEN);
    if quads.len() > 0 {
        // Parse key and nonce into the wide state once; only the counter
        // word changes between passes.
        let mut init = wide_init(key, &[0; WIDE_LANES], &[nonce; WIDE_LANES]);
        for quad in &mut quads {
            init[12] = [
                counter,
                counter.wrapping_add(1),
                counter.wrapping_add(2),
                counter.wrapping_add(3),
            ];
            wide_xor_lanes(&init, lanes_mut(quad, 0, BLOCK_LEN, BLOCK_LEN));
            counter = counter.wrapping_add(WIDE_LANES as u32);
        }
    }
    let rest = quads.into_remainder();
    if rest.is_empty() {
        return;
    }
    let mut state = init_state(key, nonce);
    let mut chunks = rest.chunks_exact_mut(BLOCK_LEN);
    for chunk in &mut chunks {
        state[12] = counter;
        let mut working = state;
        permute(&mut working);
        for (i, word) in working.iter().enumerate() {
            let ks = word.wrapping_add(state[i]);
            let lane = &mut chunk[4 * i..4 * i + 4];
            let mixed = u32::from_le_bytes(lane.try_into().expect("4-byte lane")) ^ ks;
            lane.copy_from_slice(&mixed.to_le_bytes());
        }
        counter = counter.wrapping_add(1);
    }
    let tail = chunks.into_remainder();
    if !tail.is_empty() {
        state[12] = counter;
        let mut working = state;
        permute(&mut working);
        for (i, byte) in tail.iter_mut().enumerate() {
            let ks = working[i / 4].wrapping_add(state[i / 4]);
            *byte ^= ks.to_le_bytes()[i % 4];
        }
    }
}

/// XORs one equal-length region of many cells with per-cell keystreams in
/// one call: cell `i` occupies `flat[i * stride..(i + 1) * stride]`, and
/// its region `[offset, offset + len)` is XORed with the keystream of
/// (`key`, `counter`, `nonces[i]`) — exactly what a [`xor_keystream`] loop
/// over the cells would do, byte for byte.
///
/// This is the batch re-encryption fast path: when `len` is shorter than
/// the wide core's 256-byte stripe, four *different* cells' keystreams are
/// permuted per pass (same block index, four nonces), so short-cell batches
/// vectorize as well as long streams. Cells of 4 blocks or more instead use
/// the intra-cell wide path of [`xor_keystream`], which is equally wide.
/// Leftover cells (count not a multiple of 4) take the scalar path.
///
/// # Panics
/// Panics if `flat.len() != nonces.len() * stride` or
/// `offset + len > stride`.
pub fn xor_keystream_batch_strided(
    key: &[u8; KEY_LEN],
    counter: u32,
    nonces: &[Nonce],
    flat: &mut [u8],
    stride: usize,
    offset: usize,
    len: usize,
) {
    assert_eq!(flat.len(), nonces.len() * stride, "flat must hold one stride per nonce");
    assert!(offset + len <= stride, "cell region must fit its stride");
    if len == 0 || nonces.is_empty() {
        return;
    }
    if len >= WIDE_LANES * BLOCK_LEN {
        // Long cells: each cell's own keystream already fills the wide core.
        for (i, nonce) in nonces.iter().enumerate() {
            let base = i * stride + offset;
            xor_keystream(key, counter, nonce, &mut flat[base..base + len]);
        }
        return;
    }
    let full_blocks = len / BLOCK_LEN;
    let tail = len % BLOCK_LEN;
    let mut cell = 0;
    while cell + WIDE_LANES <= nonces.len() {
        let lane_nonces = [&nonces[cell], &nonces[cell + 1], &nonces[cell + 2], &nonces[cell + 3]];
        // One state parse per 4-cell group; only the counter word changes
        // between block indices.
        let mut init = wide_init(key, &[counter; WIDE_LANES], &lane_nonces);
        for j in 0..full_blocks {
            init[12] = [counter.wrapping_add(j as u32); WIDE_LANES];
            let first = cell * stride + offset + j * BLOCK_LEN;
            wide_xor_lanes(&init, lanes_mut(flat, first, stride, BLOCK_LEN));
        }
        if tail > 0 {
            init[12] = [counter.wrapping_add(full_blocks as u32); WIDE_LANES];
            let words = wide_words_from_init(&init);
            for (l, lane_words) in words.iter().enumerate() {
                let base = (cell + l) * stride + offset + full_blocks * BLOCK_LEN;
                xor_partial_block(&mut flat[base..base + tail], lane_words);
            }
        }
        cell += WIDE_LANES;
    }
    for (i, nonce) in nonces.iter().enumerate().skip(cell) {
        let base = i * stride + offset;
        xor_keystream(key, counter, nonce, &mut flat[base..base + len]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// RFC 8439 §2.3.2: ChaCha20 block function test vector.
    #[test]
    fn rfc8439_block_vector() {
        let key: [u8; 32] = hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
            .try_into()
            .unwrap();
        let nonce: [u8; 12] = hex("000000090000004a00000000").try_into().unwrap();
        let expected = hex("10f1e7e4d13b5915500fdd1fa32071c4 c7d1f4c733c068030422aa9ac3d46c4e
             d2826446079faa0914c2d705d98b02a2 b5129cd1de164eb9cbd083e8a2503c4e");
        assert_eq!(block(&key, 1, &nonce).to_vec(), expected);
    }

    /// RFC 8439 §2.4.2: ChaCha20 encryption test vector.
    #[test]
    fn rfc8439_encrypt_vector() {
        let key: [u8; 32] = hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
            .try_into()
            .unwrap();
        let nonce: [u8; 12] = hex("000000000000004a00000000").try_into().unwrap();
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it."
            .to_vec();
        xor_keystream(&key, 1, &nonce, &mut data);
        let expected = hex("6e2e359a2568f98041ba0728dd0d6981 e97e7aec1d4360c20a27afccfd9fae0b
             f91b65c5524733ab8f593dabcd62b357 1639d624e65152ab8f530c359f0861d8
             07ca0dbf500d6a6156a38e088a22b65e 52bc514d16ccf806818ce91ab7793736
             5af90bbf74a35be6b40b8eedf2785e42 874d");
        assert_eq!(data, expected);
    }

    /// Round-trip: XORing twice with the same keystream restores the input.
    #[test]
    fn keystream_round_trip() {
        let key = [7u8; 32];
        let nonce = [3u8; 12];
        let original: Vec<u8> = (0..=255).collect();
        let mut data = original.clone();
        xor_keystream(&key, 0, &nonce, &mut data);
        assert_ne!(data, original);
        xor_keystream(&key, 0, &nonce, &mut data);
        assert_eq!(data, original);
    }

    /// Distinct counters produce distinct keystream blocks.
    #[test]
    fn counter_separates_blocks() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        assert_ne!(block(&key, 0, &nonce), block(&key, 1, &nonce));
    }

    /// Distinct nonces produce distinct keystream blocks.
    #[test]
    fn nonce_separates_blocks() {
        let key = [1u8; 32];
        assert_ne!(block(&key, 0, &[0u8; 12]), block(&key, 0, &[1u8; 12]));
    }

    /// The portable and SSE2 wide cores compute identical feed-forward
    /// sums for asymmetric per-lane states (the SSE2 path is what runs on
    /// x86-64; the portable path is every other target).
    #[test]
    fn wide_cores_agree() {
        let mut init = [[0u32; WIDE_LANES]; 16];
        for (w, row) in init.iter_mut().enumerate() {
            for (l, v) in row.iter_mut().enumerate() {
                *v = (w as u32).wrapping_mul(0x9e37_79b9) ^ (l as u32) << 13;
            }
        }
        let portable = wide_core_portable(&init);
        let mut portable_lane_major = [[0u32; 16]; WIDE_LANES];
        for (w, row) in portable.iter().enumerate() {
            for l in 0..WIDE_LANES {
                portable_lane_major[l][w] = row[l];
            }
        }
        #[cfg(all(target_arch = "x86_64", target_feature = "sse2"))]
        {
            let mut dispatched = [[0u32; 16]; WIDE_LANES];
            sse2::wide_core(&init, &mut dispatched);
            assert_eq!(portable_lane_major, dispatched);
        }
        // Sanity even where only the portable core exists: the sum differs
        // from the raw input (the permutation actually ran).
        assert_ne!(portable_lane_major[0][0], init[0][0]);
    }

    /// RFC 8439 §2.3.2 through the wide core: every lane of [`blocks4`]
    /// reproduces the published block when fed the vector's inputs, and
    /// mixed-lane calls agree with the scalar core lane by lane.
    #[test]
    fn rfc8439_block_vector_wide_lanes() {
        let key: [u8; 32] = hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
            .try_into()
            .unwrap();
        let nonce: [u8; 12] = hex("000000090000004a00000000").try_into().unwrap();
        let expected = block(&key, 1, &nonce);
        let all = blocks4(&key, &[1; 4], &[&nonce; 4]);
        for (l, lane) in all.iter().enumerate() {
            assert_eq!(lane, &expected, "lane {l}");
        }
        // Mixed counters and nonces: each lane must match its scalar twin.
        let other_nonce = [7u8; 12];
        let counters = [0u32, 1, u32::MAX, 5];
        let nonces = [&nonce, &other_nonce, &nonce, &other_nonce];
        let mixed = blocks4(&key, &counters, &nonces);
        for l in 0..4 {
            assert_eq!(mixed[l], block(&key, counters[l], nonces[l]), "lane {l}");
        }
    }

    /// RFC 8439 §2.4.2 through the wide batch path: four cells each holding
    /// the RFC plaintext, encrypted per-cell at counter 1 under the RFC
    /// nonce, must all equal the published ciphertext.
    #[test]
    fn rfc8439_encrypt_vector_wide_batch() {
        let key: [u8; 32] = hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
            .try_into()
            .unwrap();
        let nonce: [u8; 12] = hex("000000000000004a00000000").try_into().unwrap();
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";
        let expected = {
            let mut data = plaintext.to_vec();
            xor_keystream(&key, 1, &nonce, &mut data);
            data
        };
        let stride = plaintext.len();
        let mut flat: Vec<u8> = plaintext.iter().copied().cycle().take(4 * stride).collect();
        xor_keystream_batch_strided(&key, 1, &[nonce; 4], &mut flat, stride, 0, stride);
        for (l, cell) in flat.chunks(stride).enumerate() {
            assert_eq!(cell, expected.as_slice(), "cell {l}");
        }
    }

    /// The wide multi-block fast path agrees with a scalar per-block
    /// reference across every length class (empty, sub-block, block
    /// boundaries, 4-block stripe boundaries, long).
    #[test]
    fn wide_keystream_matches_scalar_reference() {
        let key = [0x42u8; 32];
        let nonce = [9u8; 12];
        for len in [0usize, 1, 63, 64, 65, 127, 128, 255, 256, 257, 320, 511, 1024] {
            let original: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            let mut data = original.clone();
            xor_keystream(&key, 7, &nonce, &mut data);
            // Scalar reference: XOR block-by-block via `block`.
            let mut expected = original.clone();
            for (j, chunk) in expected.chunks_mut(BLOCK_LEN).enumerate() {
                let ks = block(&key, 7 + j as u32, &nonce);
                for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                    *b ^= k;
                }
            }
            assert_eq!(data, expected, "len {len}");
        }
    }

    /// Counter wraparound behaves identically on the wide and scalar paths.
    #[test]
    fn wide_keystream_counter_wraps() {
        let key = [3u8; 32];
        let nonce = [1u8; 12];
        let mut wide = vec![0u8; 6 * BLOCK_LEN];
        xor_keystream(&key, u32::MAX - 1, &nonce, &mut wide);
        let mut scalar = vec![0u8; 6 * BLOCK_LEN];
        for (j, chunk) in scalar.chunks_mut(BLOCK_LEN).enumerate() {
            let ks = block(&key, (u32::MAX - 1).wrapping_add(j as u32), &nonce);
            chunk.copy_from_slice(&ks);
        }
        assert_eq!(wide, scalar);
    }

    /// The strided batch path equals a per-cell loop for every cell count
    /// (including non-multiples of 4) and offset/length combination.
    #[test]
    fn batch_strided_matches_per_cell_loop() {
        let key = [0x5au8; 32];
        for cells in [1usize, 2, 3, 4, 5, 7, 8, 9] {
            for (stride, offset, len) in [
                (80usize, 12usize, 64usize),
                (48, 0, 48),
                (100, 12, 77),
                (300, 12, 280),
                (16, 4, 0),
            ] {
                let nonces: Vec<Nonce> = (0..cells)
                    .map(|i| {
                        let mut n = [0u8; NONCE_LEN];
                        n[0] = i as u8;
                        n[5] = 0xA0 | i as u8;
                        n
                    })
                    .collect();
                let original: Vec<u8> = (0..cells * stride).map(|i| (i * 13 % 251) as u8).collect();
                let mut batch = original.clone();
                xor_keystream_batch_strided(&key, 1, &nonces, &mut batch, stride, offset, len);
                let mut expected = original.clone();
                for (i, nonce) in nonces.iter().enumerate() {
                    let base = i * stride + offset;
                    xor_keystream(&key, 1, nonce, &mut expected[base..base + len]);
                }
                assert_eq!(
                    batch, expected,
                    "cells {cells} stride {stride} offset {offset} len {len}"
                );
            }
        }
    }
}
