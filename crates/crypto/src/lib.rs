//! Cryptographic substrate for the `dp-storage` workspace.
//!
//! The paper's constructions need exactly three cryptographic tools:
//!
//! * an **IND-CPA symmetric encryption scheme** `(Enc, Dec)` used by DP-RAM
//!   and DP-KVS to re-randomize block contents on every overwrite
//!   ([`cipher::BlockCipher`], ChaCha20 in CTR mode with fresh nonces);
//! * a **pseudorandom function** used by the two-choice mapping scheme to
//!   derive bucket choices `Π(u) = {F(key1, u), F(key2, u)}`
//!   ([`prf::Prf`], HMAC-SHA256 truncated);
//! * a **source of private randomness** for the noise each scheme injects
//!   ([`rng::ChaChaRng`], a deterministic ChaCha20-based CSPRNG so that every
//!   experiment in this repository is exactly reproducible from a seed).
//!
//! Three further tools support the workspace's extensions beyond the
//! paper's honest-but-curious model and its baselines:
//!
//! * **ChaCha20-Poly1305 AEAD** ([`aead::AeadCipher`], RFC 8439 complete,
//!   built on [`poly1305`]) with associated data, used by the hardened
//!   DP-RAM to bind each ciphertext to its storage address;
//! * a **Merkle hash tree** ([`merkle::MerkleTree`]) giving the client a
//!   32-byte commitment that detects corruption, swaps and rollbacks by an
//!   actively malicious server;
//! * a **small-domain PRP** ([`prp::SmallDomainPrp`], 4-round Feistel with
//!   cycle walking) so the square-root ORAM baseline can evaluate its cell
//!   permutation from a key instead of storing a table.
//!
//! Everything is implemented from primitives (no external crates) and tested
//! against the published RFC 8439 / FIPS 180-4 / RFC 4231 vectors.

// `deny` rather than `forbid`: every `unsafe` in the crate is confined to
// the audited `chacha::sse2` and `chacha::avx2` modules
// (crates/crypto/src/chacha.rs), whose `#[allow(unsafe_code)]` sites
// cover (a) calling the `#[target_feature(enable = ...)]` cores — a
// formality for SSE2, which is the x86-64 baseline ABI the module is
// compile-time gated on, and runtime-guarded for AVX2, whose public
// wrappers assert `is_x86_feature_detected!("avx2")` before entering the
// `target_feature` body — and (b) 16-/32-byte unaligned vector
// load/stores through pointers derived from exclusively borrowed,
// length-checked slices. No other pointer arithmetic, no transmutes; the
// rest of the crate (including the `isa` dispatch table) remains
// unsafe-free and the lint rejects any new exception without review.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod aead;
pub mod chacha;
pub mod cipher;
pub mod hmac;
pub mod isa;
pub mod merkle;
pub mod poly1305;
pub mod prf;
pub mod prp;
pub mod rng;
pub mod sha256;

pub use aead::{AeadCipher, Sealed, AEAD_OVERHEAD};
pub use chacha::Nonce;
pub use cipher::{BlockCipher, Ciphertext, CryptoError, Key, CIPHERTEXT_OVERHEAD};
pub use hmac::HmacKey;
pub use isa::IsaTier;
pub use prf::{HmacPrf, Prf};
pub use prp::SmallDomainPrp;
pub use rng::ChaChaRng;
