//! ChaCha20-Poly1305 AEAD (RFC 8439 §2.8) with associated data.
//!
//! The paper's model is an honest-but-curious server, so the base
//! [`crate::cipher::BlockCipher`] only needs IND-CPA. A production
//! deployment also wants protection against an *active* server that swaps,
//! rolls back, or corrupts cells. [`AeadCipher`] provides that hardening:
//! each cell is sealed with its address (and, optionally, a version counter)
//! as associated data, so a ciphertext moved to a different address fails
//! authentication. See the `tamper_detection` integration tests for the
//! attack scenarios this defeats.

use crate::chacha;
use crate::cipher::CryptoError;
use crate::poly1305::{tags_equal, Poly1305, Poly1305xN, TAG_LEN};
use crate::rng::ChaChaRng;

/// Ciphertext expansion of [`AeadCipher`]: nonce plus Poly1305 tag.
pub const AEAD_OVERHEAD: usize = chacha::NONCE_LEN + TAG_LEN;

/// A sealed AEAD ciphertext: `nonce || body || tag`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Sealed(pub Vec<u8>);

impl Sealed {
    /// Total length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if empty (never the case for valid output).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// ChaCha20-Poly1305 AEAD cipher with per-encryption random nonces.
#[derive(Clone)]
pub struct AeadCipher {
    key: [u8; chacha::KEY_LEN],
}

impl std::fmt::Debug for AeadCipher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AeadCipher(..)")
    }
}

impl AeadCipher {
    /// Builds a cipher from an existing 256-bit key.
    pub fn new(key: [u8; chacha::KEY_LEN]) -> Self {
        Self { key }
    }

    /// Samples a fresh key.
    pub fn generate(rng: &mut ChaChaRng) -> Self {
        let mut key = [0u8; chacha::KEY_LEN];
        rng.fill_bytes(&mut key);
        Self { key }
    }

    /// RFC 8439 §2.6: the Poly1305 one-time key is the first 32 bytes of
    /// the ChaCha20 block at counter 0.
    fn one_time_key(&self, nonce: &[u8; chacha::NONCE_LEN]) -> [u8; 32] {
        let block = chacha::block(&self.key, 0, nonce);
        block[..32].try_into().expect("32-byte prefix")
    }

    fn tag(&self, nonce: &[u8; chacha::NONCE_LEN], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
        let mut mac = Poly1305::new(&self.one_time_key(nonce));
        mac.update(aad);
        mac.pad16();
        mac.update(ciphertext);
        mac.pad16();
        mac.update(&(aad.len() as u64).to_le_bytes());
        mac.update(&(ciphertext.len() as u64).to_le_bytes());
        mac.finalize()
    }

    /// Seals `plaintext` with a fresh random nonce, binding `aad`.
    pub fn seal(&self, aad: &[u8], plaintext: &[u8], rng: &mut ChaChaRng) -> Sealed {
        let mut nonce = [0u8; chacha::NONCE_LEN];
        rng.fill_bytes(&mut nonce);
        self.seal_with_nonce(&nonce, aad, plaintext)
    }

    /// Seals `plaintext` into `out` (cleared first) with a fresh random
    /// nonce. Performs no heap allocation once `out` has capacity for
    /// `plaintext.len() + AEAD_OVERHEAD` bytes.
    pub fn seal_into(&self, aad: &[u8], plaintext: &[u8], out: &mut Vec<u8>, rng: &mut ChaChaRng) {
        let mut nonce = [0u8; chacha::NONCE_LEN];
        rng.fill_bytes(&mut nonce);
        out.clear();
        out.reserve(plaintext.len() + AEAD_OVERHEAD);
        out.extend_from_slice(&nonce);
        out.extend_from_slice(plaintext);
        chacha::xor_keystream(&self.key, 1, &nonce, &mut out[chacha::NONCE_LEN..]);
        let tag = self.tag(&nonce, aad, &out[chacha::NONCE_LEN..]);
        out.extend_from_slice(&tag);
    }

    /// Opens a sealed ciphertext in place: on success `buf` holds the
    /// plaintext (nonce and tag stripped); on failure `buf` is unchanged.
    /// No heap allocation ever.
    pub fn open_in_place(&self, aad: &[u8], buf: &mut Vec<u8>) -> Result<(), CryptoError> {
        if buf.len() < AEAD_OVERHEAD {
            return Err(CryptoError::Malformed);
        }
        let nonce: [u8; chacha::NONCE_LEN] =
            buf[..chacha::NONCE_LEN].try_into().expect("nonce prefix");
        let body_len = buf.len() - TAG_LEN;
        let tag: [u8; TAG_LEN] = buf[body_len..].try_into().expect("16-byte tag");
        if !tags_equal(&self.tag(&nonce, aad, &buf[chacha::NONCE_LEN..body_len]), &tag) {
            return Err(CryptoError::TagMismatch);
        }
        chacha::xor_keystream(&self.key, 1, &nonce, &mut buf[chacha::NONCE_LEN..body_len]);
        buf.copy_within(chacha::NONCE_LEN..body_len, 0);
        buf.truncate(body_len - chacha::NONCE_LEN);
        Ok(())
    }

    /// Deterministic slice-form seal: writes `nonce || body || tag` into
    /// `out`, which must be exactly `plaintext.len() + AEAD_OVERHEAD`
    /// bytes. The parallel-batch primitive: nonces are pre-drawn on the
    /// caller thread and worker threads seal disjoint cells into disjoint
    /// slots, byte-identical to a sequential [`AeadCipher::seal_into`]
    /// loop over the same RNG stream.
    ///
    /// # Panics
    /// Panics if `out.len() != plaintext.len() + AEAD_OVERHEAD`.
    pub fn seal_with_nonce_into(
        &self,
        nonce: &[u8; chacha::NONCE_LEN],
        aad: &[u8],
        plaintext: &[u8],
        out: &mut [u8],
    ) {
        assert_eq!(
            out.len(),
            plaintext.len() + AEAD_OVERHEAD,
            "output slot must be plaintext + overhead"
        );
        let body_end = chacha::NONCE_LEN + plaintext.len();
        out[..chacha::NONCE_LEN].copy_from_slice(nonce);
        out[chacha::NONCE_LEN..body_end].copy_from_slice(plaintext);
        chacha::xor_keystream(&self.key, 1, nonce, &mut out[chacha::NONCE_LEN..body_end]);
        let tag = self.tag(nonce, aad, &out[chacha::NONCE_LEN..body_end]);
        out[body_end..].copy_from_slice(&tag);
    }

    /// Deterministic slice-form open: verifies the tag against `aad` and
    /// writes the plaintext into the first `data.len() - AEAD_OVERHEAD`
    /// bytes of `out`, returning that length. `out` is untouched on error.
    ///
    /// # Panics
    /// Panics if `out` is shorter than the plaintext.
    pub fn open_to_slice(
        &self,
        aad: &[u8],
        data: &[u8],
        out: &mut [u8],
    ) -> Result<usize, CryptoError> {
        if data.len() < AEAD_OVERHEAD {
            return Err(CryptoError::Malformed);
        }
        let nonce: [u8; chacha::NONCE_LEN] =
            data[..chacha::NONCE_LEN].try_into().expect("nonce prefix");
        let body_len = data.len() - TAG_LEN;
        let tag: [u8; TAG_LEN] = data[body_len..].try_into().expect("16-byte tag");
        if !tags_equal(&self.tag(&nonce, aad, &data[chacha::NONCE_LEN..body_len]), &tag) {
            return Err(CryptoError::TagMismatch);
        }
        let pt_len = body_len - chacha::NONCE_LEN;
        out[..pt_len].copy_from_slice(&data[chacha::NONCE_LEN..body_len]);
        chacha::xor_keystream(&self.key, 1, &nonce, &mut out[..pt_len]);
        Ok(pt_len)
    }

    /// The shared `aad_len || ct_len` trailer block of the tag message for
    /// a 16-byte AAD and `pt_stride`-byte body (RFC 8439 §2.8 lengths).
    fn lens_block(pt_stride: usize) -> [u8; 16] {
        let mut lens = [0u8; 16];
        lens[..8].copy_from_slice(&16u64.to_le_bytes());
        lens[8..].copy_from_slice(&(pt_stride as u64).to_le_bytes());
        lens
    }

    /// Derives `N` one-time Poly1305 keys in wide ChaCha passes (one
    /// 8-lane AVX2 pass when `N = 8` and the tier allows).
    fn one_time_keys<const N: usize>(
        &self,
        nonces: &[&[u8; chacha::NONCE_LEN]; N],
    ) -> [[u8; 32]; N] {
        let mut blocks = [[0u8; chacha::BLOCK_LEN]; N];
        chacha::blocks_each(&self.key, &[0; N], nonces, &mut blocks);
        std::array::from_fn(|l| blocks[l][..32].try_into().expect("32-byte prefix"))
    }

    /// Computes the AEAD tags of cells `cell..cell + N` laid out in `flat`
    /// at `ct_stride` (nonces read from the slot prefixes, bodies of
    /// `pt_stride` bytes, `lens` the shared `aad_len || ct_len` block):
    /// wide passes for the `N` one-time keys, interleaved Poly1305 over
    /// `aad || pad16 || body || pad16 || lens` per lane. Returns the
    /// group's nonces alongside the tags.
    fn group_tags<const N: usize>(
        &self,
        flat: &[u8],
        aads: &[[u8; 16]],
        cell: usize,
        ct_stride: usize,
        pt_stride: usize,
        lens: &[u8; 16],
    ) -> ([chacha::Nonce; N], [[u8; TAG_LEN]; N]) {
        let body_end = chacha::NONCE_LEN + pt_stride;
        let nonces: [chacha::Nonce; N] = std::array::from_fn(|l| {
            flat[(cell + l) * ct_stride..(cell + l) * ct_stride + chacha::NONCE_LEN]
                .try_into()
                .expect("nonce prefix")
        });
        let nonce_refs: [&chacha::Nonce; N] = std::array::from_fn(|l| &nonces[l]);
        let otks = self.one_time_keys(&nonce_refs);
        let mut mac = Poly1305xN::<N>::new(std::array::from_fn(|l| &otks[l]));
        mac.update(std::array::from_fn(|l| &aads[cell + l][..]));
        // 16-byte aads are already block-aligned (pad16 is a no-op),
        // matching the scalar tag()'s update(aad); pad16() sequence.
        mac.update(std::array::from_fn(|l| {
            let base = (cell + l) * ct_stride;
            &flat[base + chacha::NONCE_LEN..base + body_end]
        }));
        mac.pad16();
        mac.update([lens.as_slice(); N]);
        (nonces, mac.finalize())
    }

    /// Verifies and opens the `N` cells starting at `cell` of a strided
    /// batch: checks every tag (constant-time per lane), copies the bodies
    /// into their plaintext slots and strips the keystream in one wide
    /// strided pass. The group engine behind
    /// [`AeadCipher::open_batch_to_slices`].
    fn open_group<const N: usize>(
        &self,
        aads: &[[u8; 16]],
        ciphertexts: &[u8],
        cell: usize,
        ct_stride: usize,
        lens: &[u8; 16],
        out: &mut [u8],
    ) -> Result<(), CryptoError> {
        let pt_stride = ct_stride - AEAD_OVERHEAD;
        let body_end = chacha::NONCE_LEN + pt_stride;
        let (group_nonces, tags) =
            self.group_tags::<N>(ciphertexts, aads, cell, ct_stride, pt_stride, lens);
        for (l, expected) in tags.iter().enumerate() {
            let base = (cell + l) * ct_stride;
            let stored: [u8; TAG_LEN] = ciphertexts[base + body_end..base + ct_stride]
                .try_into()
                .expect("16-byte tag");
            if !tags_equal(expected, &stored) {
                return Err(CryptoError::TagMismatch);
            }
        }
        for l in 0..N {
            let base = (cell + l) * ct_stride;
            out[(cell + l) * pt_stride..(cell + l + 1) * pt_stride]
                .copy_from_slice(&ciphertexts[base + chacha::NONCE_LEN..base + body_end]);
        }
        let group_out = &mut out[cell * pt_stride..(cell + N) * pt_stride];
        chacha::xor_keystream_batch_strided(
            &self.key,
            1,
            &group_nonces,
            group_out,
            pt_stride,
            0,
            pt_stride,
        );
        Ok(())
    }

    /// Seals `nonces.len()` equal-length plaintexts packed back-to-back in
    /// `plaintexts` into `nonce || body || tag` slots of `out`, binding
    /// `aads[i]` to cell `i`. Byte-identical to a
    /// [`AeadCipher::seal_with_nonce_into`] loop, but drives the wide
    /// keystream across cells and interleaves the tags' Poly1305
    /// arithmetic in groups of 8, then 4 (one-time keys also derived a
    /// group per pass).
    ///
    /// # Panics
    /// Panics if `aads.len() != nonces.len()`, `plaintexts.len()` is not
    /// `nonces.len()` equal strides, or `out.len()` is not
    /// `nonces.len() * (stride + AEAD_OVERHEAD)`.
    pub fn seal_batch_with_nonces(
        &self,
        nonces: &[chacha::Nonce],
        aads: &[[u8; 16]],
        plaintexts: &[u8],
        out: &mut [u8],
    ) {
        let cells = nonces.len();
        assert_eq!(aads.len(), cells, "one aad per cell");
        if cells == 0 {
            assert!(plaintexts.is_empty() && out.is_empty(), "bytes without nonces");
            return;
        }
        assert_eq!(plaintexts.len() % cells, 0, "plaintext length not a multiple of cell count");
        let pt_stride = plaintexts.len() / cells;
        let ct_stride = pt_stride + AEAD_OVERHEAD;
        assert_eq!(out.len(), cells * ct_stride, "output must hold every ciphertext");

        for (i, nonce) in nonces.iter().enumerate() {
            let slot = &mut out[i * ct_stride..(i + 1) * ct_stride];
            slot[..chacha::NONCE_LEN].copy_from_slice(nonce);
            slot[chacha::NONCE_LEN..chacha::NONCE_LEN + pt_stride]
                .copy_from_slice(&plaintexts[i * pt_stride..(i + 1) * pt_stride]);
        }
        chacha::xor_keystream_batch_strided(
            &self.key,
            1,
            nonces,
            out,
            ct_stride,
            chacha::NONCE_LEN,
            pt_stride,
        );

        let body_end = chacha::NONCE_LEN + pt_stride;
        let lens = Self::lens_block(pt_stride);
        let mut cell = 0;
        while cell + 8 <= cells {
            let (_, tags) = self.group_tags::<8>(out, aads, cell, ct_stride, pt_stride, &lens);
            for (l, tag) in tags.iter().enumerate() {
                let base = (cell + l) * ct_stride;
                out[base + body_end..base + ct_stride].copy_from_slice(tag);
            }
            cell += 8;
        }
        while cell + 4 <= cells {
            let (_, tags) = self.group_tags::<4>(out, aads, cell, ct_stride, pt_stride, &lens);
            for (l, tag) in tags.iter().enumerate() {
                let base = (cell + l) * ct_stride;
                out[base + body_end..base + ct_stride].copy_from_slice(tag);
            }
            cell += 4;
        }
        for (i, aad) in aads.iter().enumerate().skip(cell) {
            let base = i * ct_stride;
            let nonce: [u8; chacha::NONCE_LEN] = out[base..base + chacha::NONCE_LEN]
                .try_into()
                .expect("nonce prefix");
            let tag = self.tag(&nonce, aad, &out[base + chacha::NONCE_LEN..base + body_end]);
            out[base + body_end..base + ct_stride].copy_from_slice(&tag);
        }
    }

    /// Opens `aads.len()` equal-length sealed cells packed back-to-back in
    /// `ciphertexts` into the plaintext slots of `out`, verifying 8, then
    /// 4, tags per interleaved pass. Returns the lowest-indexed cell's
    /// error on failure, with the contents of `out` unspecified. The batch
    /// twin of [`AeadCipher::open_to_slice`].
    ///
    /// # Panics
    /// Panics if the flat lengths are inconsistent with `aads.len()`.
    pub fn open_batch_to_slices(
        &self,
        aads: &[[u8; 16]],
        ciphertexts: &[u8],
        out: &mut [u8],
    ) -> Result<(), CryptoError> {
        let cells = aads.len();
        if cells == 0 {
            assert!(ciphertexts.is_empty() && out.is_empty(), "bytes without cells");
            return Ok(());
        }
        assert_eq!(ciphertexts.len() % cells, 0, "ciphertext length not a multiple of cell count");
        let ct_stride = ciphertexts.len() / cells;
        if ct_stride < AEAD_OVERHEAD {
            return Err(CryptoError::Malformed);
        }
        let pt_stride = ct_stride - AEAD_OVERHEAD;
        assert_eq!(out.len(), cells * pt_stride, "output must hold every plaintext");
        let lens = Self::lens_block(pt_stride);

        let mut cell = 0;
        while cell + 8 <= cells {
            self.open_group::<8>(aads, ciphertexts, cell, ct_stride, &lens, out)?;
            cell += 8;
        }
        while cell + 4 <= cells {
            self.open_group::<4>(aads, ciphertexts, cell, ct_stride, &lens, out)?;
            cell += 4;
        }
        for i in cell..cells {
            let ct = &ciphertexts[i * ct_stride..(i + 1) * ct_stride];
            self.open_to_slice(&aads[i], ct, &mut out[i * pt_stride..(i + 1) * pt_stride])?;
        }
        Ok(())
    }

    /// Seals with a caller-chosen nonce (test vectors; deterministic
    /// callers must guarantee nonce uniqueness themselves).
    pub fn seal_with_nonce(
        &self,
        nonce: &[u8; chacha::NONCE_LEN],
        aad: &[u8],
        plaintext: &[u8],
    ) -> Sealed {
        let mut out = Vec::with_capacity(plaintext.len() + AEAD_OVERHEAD);
        out.extend_from_slice(nonce);
        out.extend_from_slice(plaintext);
        chacha::xor_keystream(&self.key, 1, nonce, &mut out[chacha::NONCE_LEN..]);
        let tag = self.tag(nonce, aad, &out[chacha::NONCE_LEN..]);
        out.extend_from_slice(&tag);
        Sealed(out)
    }

    /// Opens a sealed ciphertext, verifying the tag against `aad`.
    pub fn open(&self, aad: &[u8], sealed: &Sealed) -> Result<Vec<u8>, CryptoError> {
        let data = &sealed.0;
        if data.len() < AEAD_OVERHEAD {
            return Err(CryptoError::Malformed);
        }
        let nonce: [u8; chacha::NONCE_LEN] =
            data[..chacha::NONCE_LEN].try_into().expect("nonce prefix");
        let (body, tag_bytes) = data[chacha::NONCE_LEN..].split_at(data.len() - AEAD_OVERHEAD);
        let tag: [u8; TAG_LEN] = tag_bytes.try_into().expect("16-byte tag");
        if !tags_equal(&self.tag(&nonce, aad, body), &tag) {
            return Err(CryptoError::TagMismatch);
        }
        let mut plaintext = body.to_vec();
        chacha::xor_keystream(&self.key, 1, &nonce, &mut plaintext);
        Ok(plaintext)
    }
}

/// Encodes a storage address as associated data, binding a cell's
/// ciphertext to its location (and an optional version for rollback
/// detection).
pub fn address_aad(address: usize, version: u64) -> [u8; 16] {
    let mut aad = [0u8; 16];
    aad[..8].copy_from_slice(&(address as u64).to_le_bytes());
    aad[8..].copy_from_slice(&version.to_le_bytes());
    aad
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| c.is_ascii_hexdigit()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// RFC 8439 §2.8.2: the complete AEAD test vector.
    #[test]
    fn rfc8439_aead_vector() {
        let key: [u8; 32] = hex("808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f")
            .try_into()
            .unwrap();
        let nonce: [u8; 12] = hex("070000004041424344454647").try_into().unwrap();
        let aad = hex("50515253c0c1c2c3c4c5c6c7");
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";

        let cipher = AeadCipher::new(key);
        let sealed = cipher.seal_with_nonce(&nonce, &aad, plaintext);

        let expected_ct = hex("d31a8d34648e60db7b86afbc53ef7ec2
             a4aded51296e08fea9e2b5a736ee62d6
             3dbea45e8ca9671282fafb69da92728b
             1a71de0a9e060b2905d6a5b67ecd3b36
             92ddbd7f2d778b8c9803aee328091b58
             fab324e4fad675945585808b4831d7bc
             3ff4def08e4b7a9de576d26586cec64b
             6116");
        let expected_tag = hex("1ae10b594f09e26a7e902ecbd0600691");
        let body = &sealed.0[12..sealed.0.len() - 16];
        let tag = &sealed.0[sealed.0.len() - 16..];
        assert_eq!(body, expected_ct.as_slice());
        assert_eq!(tag, expected_tag.as_slice());

        assert_eq!(cipher.open(&aad, &sealed).unwrap(), plaintext);
    }

    #[test]
    fn round_trip_various_lengths() {
        let mut rng = ChaChaRng::seed_from_u64(1);
        let cipher = AeadCipher::generate(&mut rng);
        for len in [0usize, 1, 15, 16, 17, 63, 64, 65, 1000] {
            let pt: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let sealed = cipher.seal(b"aad", &pt, &mut rng);
            assert_eq!(sealed.len(), len + AEAD_OVERHEAD);
            assert_eq!(cipher.open(b"aad", &sealed).unwrap(), pt, "len {len}");
        }
    }

    #[test]
    fn wrong_aad_is_rejected() {
        let mut rng = ChaChaRng::seed_from_u64(2);
        let cipher = AeadCipher::generate(&mut rng);
        let sealed = cipher.seal(&address_aad(7, 0), b"cell contents", &mut rng);
        assert_eq!(
            cipher.open(&address_aad(8, 0), &sealed),
            Err(CryptoError::TagMismatch),
            "moved to a different address"
        );
        assert_eq!(
            cipher.open(&address_aad(7, 1), &sealed),
            Err(CryptoError::TagMismatch),
            "rolled back to an older version"
        );
        assert!(cipher.open(&address_aad(7, 0), &sealed).is_ok());
    }

    #[test]
    fn corruption_anywhere_is_rejected() {
        let mut rng = ChaChaRng::seed_from_u64(3);
        let cipher = AeadCipher::generate(&mut rng);
        let sealed = cipher.seal(b"", b"sixteen byte msg", &mut rng);
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad.0[i] ^= 1;
            assert_eq!(cipher.open(b"", &bad), Err(CryptoError::TagMismatch), "flip at byte {i}");
        }
    }

    /// The batch seal/open entry points are byte-identical to per-cell
    /// loops across cell-count remainder classes and strides, with
    /// per-cell address AADs.
    #[test]
    fn batch_matches_sequential_loop() {
        let mut rng = ChaChaRng::seed_from_u64(8);
        let cipher = AeadCipher::generate(&mut rng);
        for cells in [1usize, 3, 4, 6, 7, 8, 9, 11, 12, 13, 16, 17] {
            for pt_stride in [0usize, 1, 15, 16, 17, 64, 100, 256] {
                let plaintexts: Vec<u8> =
                    (0..cells * pt_stride).map(|i| (i * 23 % 251) as u8).collect();
                let nonces = rng.draw_nonces(cells);
                let aads: Vec<[u8; 16]> =
                    (0..cells).map(|i| address_aad(i * 3 + 1, i as u64)).collect();
                let ct_stride = pt_stride + AEAD_OVERHEAD;
                let mut batch = vec![0u8; cells * ct_stride];
                cipher.seal_batch_with_nonces(&nonces, &aads, &plaintexts, &mut batch);
                let mut seq = vec![0u8; cells * ct_stride];
                for i in 0..cells {
                    cipher.seal_with_nonce_into(
                        &nonces[i],
                        &aads[i],
                        &plaintexts[i * pt_stride..(i + 1) * pt_stride],
                        &mut seq[i * ct_stride..(i + 1) * ct_stride],
                    );
                }
                assert_eq!(batch, seq, "cells {cells} stride {pt_stride}");
                let mut back = vec![0u8; cells * pt_stride];
                cipher.open_batch_to_slices(&aads, &batch, &mut back).unwrap();
                assert_eq!(back, plaintexts, "cells {cells} stride {pt_stride}");
            }
        }
    }

    /// Batch open rejects a swapped AAD or corrupted byte in any cell.
    #[test]
    fn batch_open_rejects_wrong_aad_and_corruption() {
        let mut rng = ChaChaRng::seed_from_u64(9);
        let cipher = AeadCipher::generate(&mut rng);
        let cells = 13;
        let pt_stride = 48;
        let plaintexts = vec![7u8; cells * pt_stride];
        let nonces = rng.draw_nonces(cells);
        let aads: Vec<[u8; 16]> = (0..cells).map(|i| address_aad(i, 0)).collect();
        let ct_stride = pt_stride + AEAD_OVERHEAD;
        let mut cts = vec![0u8; cells * ct_stride];
        cipher.seal_batch_with_nonces(&nonces, &aads, &plaintexts, &mut cts);
        let mut out = vec![0u8; cells * pt_stride];
        // Swap two cells' AADs: both verifications must fail.
        let mut swapped = aads.clone();
        swapped.swap(1, 4);
        assert_eq!(
            cipher.open_batch_to_slices(&swapped, &cts, &mut out),
            Err(CryptoError::TagMismatch)
        );
        // Corrupt each cell in turn (covers wide groups and the remainder).
        for bad_cell in 0..cells {
            let mut corrupted = cts.clone();
            corrupted[bad_cell * ct_stride + 5] ^= 1;
            assert_eq!(
                cipher.open_batch_to_slices(&aads, &corrupted, &mut out),
                Err(CryptoError::TagMismatch),
                "cell {bad_cell}"
            );
        }
        assert!(cipher.open_batch_to_slices(&aads, &cts, &mut out).is_ok());
    }

    #[test]
    fn truncation_is_malformed() {
        let mut rng = ChaChaRng::seed_from_u64(4);
        let cipher = AeadCipher::generate(&mut rng);
        assert_eq!(
            cipher.open(b"", &Sealed(vec![0u8; AEAD_OVERHEAD - 1])),
            Err(CryptoError::Malformed)
        );
    }

    #[test]
    fn wrong_key_is_rejected() {
        let mut rng = ChaChaRng::seed_from_u64(5);
        let a = AeadCipher::generate(&mut rng);
        let b = AeadCipher::generate(&mut rng);
        let sealed = a.seal(b"x", b"data", &mut rng);
        assert_eq!(b.open(b"x", &sealed), Err(CryptoError::TagMismatch));
    }

    #[test]
    fn reencryption_randomizes() {
        let mut rng = ChaChaRng::seed_from_u64(6);
        let cipher = AeadCipher::generate(&mut rng);
        let s1 = cipher.seal(b"a", b"same plaintext", &mut rng);
        let s2 = cipher.seal(b"a", b"same plaintext", &mut rng);
        assert_ne!(s1, s2);
    }

    #[test]
    fn address_aad_is_injective_on_fields() {
        assert_ne!(address_aad(1, 0), address_aad(0, 1));
        assert_ne!(address_aad(3, 9), address_aad(9, 3));
        assert_eq!(address_aad(5, 7), address_aad(5, 7));
    }

    #[test]
    fn empty_aad_and_empty_plaintext() {
        let mut rng = ChaChaRng::seed_from_u64(7);
        let cipher = AeadCipher::generate(&mut rng);
        let sealed = cipher.seal(b"", b"", &mut rng);
        assert_eq!(sealed.len(), AEAD_OVERHEAD);
        assert_eq!(cipher.open(b"", &sealed).unwrap(), Vec::<u8>::new());
    }
}
