//! A small-domain pseudorandom permutation (PRP) over `[0, m)`.
//!
//! The square-root ORAM baseline permutes server cells with a keyed
//! permutation that the client must be able to evaluate point-wise without
//! storing the permutation table (client state must stay `O(1)` cells).
//! The standard tool is a balanced Feistel network over `2w`-bit strings
//! combined with *cycle walking* to shrink the power-of-two domain down to
//! an arbitrary `m` (Black–Rogaway FPE): if the Feistel output lands
//! outside `[0, m)`, re-apply the permutation until it lands inside. Each
//! walk step stays inside the Feistel domain, so the composition is still a
//! permutation of `[0, m)`; the expected number of steps is below 4 because
//! the Feistel domain is at most 4× the target domain.
//!
//! Four Feistel rounds with independent PRF round keys are
//! indistinguishable from a random permutation up to the birthday bound
//! (Luby–Rackoff), which is far beyond the adversary's budget at the
//! database sizes this workspace simulates.

use crate::prf::{HmacPrf, Prf};

/// Number of Feistel rounds (Luby–Rackoff strong-PRP count).
const ROUNDS: usize = 4;

/// A keyed pseudorandom permutation over the domain `[0, m)`.
#[derive(Clone)]
pub struct SmallDomainPrp {
    m: u64,
    half_bits: u32,
    half_mask: u64,
    rounds: [HmacPrf; ROUNDS],
}

impl std::fmt::Debug for SmallDomainPrp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SmallDomainPrp(m = {})", self.m)
    }
}

impl SmallDomainPrp {
    /// Builds the permutation over `[0, m)` from a master key. Different
    /// `(key, tweak)` pairs yield independent permutations; the tweak lets
    /// one key drive one permutation per shuffle epoch.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    pub fn new(key: &[u8], tweak: u64, m: u64) -> Self {
        assert!(m > 0, "PRP domain must be non-empty");
        // Feistel domain 2^(2·half_bits), the smallest even-bit-width
        // power of two covering m (so the domain is less than 4m and cycle
        // walking terminates quickly).
        let bits = 64 - (m - 1).leading_zeros();
        let half_bits = bits.div_ceil(2).max(1);
        let master = HmacPrf::new(key);
        let rounds = std::array::from_fn(|r| {
            let mut label = Vec::with_capacity(24);
            label.extend_from_slice(b"feistel-round");
            label.push(r as u8);
            label.extend_from_slice(&tweak.to_le_bytes());
            master.derive(&label)
        });
        Self { m, half_bits, half_mask: (1u64 << half_bits) - 1, rounds }
    }

    /// Domain size `m`.
    pub fn domain(&self) -> u64 {
        self.m
    }

    fn feistel(&self, x: u64, forward: bool) -> u64 {
        let mut left = (x >> self.half_bits) & self.half_mask;
        let mut right = x & self.half_mask;
        let order: [usize; ROUNDS] = if forward { [0, 1, 2, 3] } else { [3, 2, 1, 0] };
        for &r in &order {
            if forward {
                let f = self.rounds[r].eval(&right.to_le_bytes()) & self.half_mask;
                let new_right = left ^ f;
                left = right;
                right = new_right;
            } else {
                let f = self.rounds[r].eval(&left.to_le_bytes()) & self.half_mask;
                let new_left = right ^ f;
                right = left;
                left = new_left;
            }
        }
        (left << self.half_bits) | right
    }

    /// Evaluates the permutation at `x`.
    ///
    /// # Panics
    /// Panics if `x >= m`.
    pub fn permute(&self, x: u64) -> u64 {
        assert!(x < self.m, "PRP input {x} outside domain {}", self.m);
        let mut y = self.feistel(x, true);
        while y >= self.m {
            y = self.feistel(y, true);
        }
        y
    }

    /// Evaluates the inverse permutation at `y`.
    ///
    /// # Panics
    /// Panics if `y >= m`.
    pub fn invert(&self, y: u64) -> u64 {
        assert!(y < self.m, "PRP input {y} outside domain {}", self.m);
        let mut x = self.feistel(y, false);
        while x >= self.m {
            x = self.feistel(x, false);
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_a_permutation() {
        for m in [1u64, 2, 3, 7, 16, 100, 257, 1000] {
            let prp = SmallDomainPrp::new(b"key", 0, m);
            let mut seen = vec![false; m as usize];
            for x in 0..m {
                let y = prp.permute(x);
                assert!(y < m, "m = {m}: output {y} out of range");
                assert!(!seen[y as usize], "m = {m}: duplicate output {y}");
                seen[y as usize] = true;
            }
        }
    }

    #[test]
    fn invert_round_trips() {
        for m in [2u64, 5, 64, 1001] {
            let prp = SmallDomainPrp::new(b"key", 3, m);
            for x in 0..m {
                assert_eq!(prp.invert(prp.permute(x)), x, "m = {m}, x = {x}");
                assert_eq!(prp.permute(prp.invert(x)), x, "m = {m}, x = {x}");
            }
        }
    }

    #[test]
    fn different_tweaks_give_different_permutations() {
        let m = 256;
        let a = SmallDomainPrp::new(b"key", 0, m);
        let b = SmallDomainPrp::new(b"key", 1, m);
        let differing = (0..m).filter(|&x| a.permute(x) != b.permute(x)).count();
        assert!(differing > 200, "tweaked permutations nearly identical: {differing}");
    }

    #[test]
    fn different_keys_give_different_permutations() {
        let m = 256;
        let a = SmallDomainPrp::new(b"key-a", 0, m);
        let b = SmallDomainPrp::new(b"key-b", 0, m);
        let differing = (0..m).filter(|&x| a.permute(x) != b.permute(x)).count();
        assert!(differing > 200);
    }

    #[test]
    fn outputs_look_uniform() {
        // Coarse uniformity: over many domain points, the mean output of a
        // random permutation of [0, m) is (m-1)/2 with small deviation.
        let m = 4096u64;
        let prp = SmallDomainPrp::new(b"uniformity", 7, m);
        let mean: f64 = (0..m).map(|x| prp.permute(x) as f64).sum::<f64>() / m as f64;
        let expected = (m as f64 - 1.0) / 2.0;
        // A permutation's mean is exactly (m-1)/2; this is really testing
        // that permute() covers the domain. The stronger test is
        // `is_a_permutation`; here check no catastrophic bias in low bits.
        assert!((mean - expected).abs() < 1e-9);
        let low_bit_ones = (0..m).filter(|&x| prp.permute(x) & 1 == 1).count();
        assert_eq!(low_bit_ones, (m / 2) as usize, "permutation preserves bit balance");
    }

    #[test]
    fn singleton_domain() {
        let prp = SmallDomainPrp::new(b"k", 0, 1);
        assert_eq!(prp.permute(0), 0);
        assert_eq!(prp.invert(0), 0);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_input_panics() {
        let prp = SmallDomainPrp::new(b"k", 0, 10);
        let _ = prp.permute(10);
    }
}
