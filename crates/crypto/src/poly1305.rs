//! Poly1305 one-time authenticator (RFC 8439 §2.5).
//!
//! Used by the [`crate::aead`] module to build the ChaCha20-Poly1305 AEAD.
//! The field arithmetic over `GF(2^130 − 5)` uses the 44/44/42-bit-limb
//! ("donna-64") representation — three `u64` limbs, `u128` products, 9
//! wide multiplies per 16-byte block — and is verified against the RFC
//! 8439 test vectors (tags are fully reduced before serialization, so the
//! limb radix is unobservable).
//!
//! For batch tagging, [`Poly1305xN`] advances `N` authenticators (4 or 8,
//! matching the active ChaCha lane width) in lock-step with limb-major
//! ("interleaved") state — `h[limb][lane]` — so the field multiply and
//! carry chain run as short lane loops over independent data. Each lane's
//! arithmetic is the shared [`block_step`] applied to its own column —
//! runs of full blocks take the fused multi-block
//! `(h + m1)·rᴺ + … + mN·r` step ([`block_step_wide`], up to four
//! blocks via precomputed `r²`/`r³`/`r⁴`), which divides the serial
//! carry chains by `N` at the same multiply count. Both forms are exact
//! mod `2^130 − 5`, so the tags are bit-identical to `N` sequential
//! [`Poly1305`] runs (pinned by the `x4_matches_scalar` /
//! `x8_matches_scalar` tests and the crypto proptests). [`poly1305_batch`] is the strided one-shot form the batch
//! cipher/AEAD paths drive, grouping cells 8 → 4 → scalar.

/// Length of a Poly1305 key (`r || s`).
pub const KEY_LEN: usize = 32;

/// Length of a Poly1305 tag.
pub const TAG_LEN: usize = 16;

#[inline]
fn le64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b.try_into().expect("8-byte chunk"))
}

/// 44-bit limb mask (limbs 0 and 1 of the radix-2^44 representation).
const M44: u64 = 0x0fff_ffff_ffff;
/// 42-bit limb mask (top limb; 44 + 44 + 42 = 130 bits).
const M42: u64 = 0x03ff_ffff_ffff;

/// Incremental Poly1305 state.
///
/// The one-shot [`poly1305`] helper suffices for most callers; the
/// incremental form lets the AEAD feed `aad || pad || ct || pad || lengths`
/// without concatenating buffers.
///
/// Internally the field arithmetic uses three 44/44/42-bit limbs in `u64`s
/// with `u128` products (the "donna-64" layout): 9 wide multiplies per
/// 16-byte block instead of the 25 narrow ones of the classic 26-bit-limb
/// form. The representation is invisible in the output — tags are fully
/// reduced before serialization, so they match any correct Poly1305
/// bit-for-bit (pinned by the RFC 8439 vectors below).
#[derive(Clone)]
pub struct Poly1305 {
    /// Clamped `r` in radix-2^44 limbs.
    r: [u64; 3],
    /// Precomputed `20·r1`, `20·r2` (the `5·4·r` folding constants).
    s: [u64; 2],
    /// The final added pad `s` from the key, as two little-endian words.
    pad: [u64; 2],
    /// Accumulator limbs.
    h: [u64; 3],
    buf: [u8; 16],
    buf_len: usize,
}

impl std::fmt::Debug for Poly1305 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material or the accumulator.
        write!(f, "Poly1305(..)")
    }
}

/// Splits a little-endian 16-byte value (`t0 || t1`) into 44/44/42-bit
/// limbs, applying `mask` to each limb position (the key clamp masks or
/// the plain limb masks).
#[inline(always)]
fn limbs(t0: u64, t1: u64, masks: [u64; 3]) -> [u64; 3] {
    [t0 & masks[0], ((t0 >> 44) | (t1 << 20)) & masks[1], (t1 >> 24) & masks[2]]
}

/// The serial carry chain shared by every block form: propagates the
/// `u128` limb products down to partially reduced 44/44/42 limbs (limb 1
/// may hold a small excess carry, absorbed by the next step or by
/// [`finalize_limbs`]).
#[inline(always)]
fn carry_reduce(d0: u128, d1: u128, d2: u128) -> [u64; 3] {
    let mut c = (d0 >> 44) as u64;
    let mut h0 = (d0 as u64) & M44;
    let d1 = d1 + u128::from(c);
    c = (d1 >> 44) as u64;
    let h1 = (d1 as u64) & M44;
    let d2 = d2 + u128::from(c);
    c = (d2 >> 42) as u64;
    let h2 = (d2 as u64) & M42;
    h0 += c * 5;
    c = h0 >> 44;
    h0 &= M44;
    [h0, h1 + c, h2]
}

/// Accumulates the 9 schoolbook products of `a · r` (with the `20·`
/// folding constants `s` standing in for the wrapped high limbs) into
/// the three limb-row accumulators. Shared by every block-step width;
/// each product is ≲ 2^94, so even twelve of them per row (the widest,
/// four-block form) stay far below `u128` range.
#[inline(always)]
fn accum(d: &mut [u128; 3], a: [u64; 3], r: &[u64; 3], s: &[u64; 2]) {
    d[0] += u128::from(a[0]) * u128::from(r[0])
        + u128::from(a[1]) * u128::from(s[1])
        + u128::from(a[2]) * u128::from(s[0]);
    d[1] += u128::from(a[0]) * u128::from(r[1])
        + u128::from(a[1]) * u128::from(r[0])
        + u128::from(a[2]) * u128::from(s[1]);
    d[2] += u128::from(a[0]) * u128::from(r[2])
        + u128::from(a[1]) * u128::from(r[1])
        + u128::from(a[2]) * u128::from(r[0]);
}

/// `a · r mod p` on 44/44/42 limbs — the 9-multiply core of
/// [`block_step`] without the message add. Also used to precompute the
/// `r²`/`r³`/`r⁴` powers for the fused multi-block steps.
#[inline(always)]
fn mul_limbs(a: [u64; 3], r: &[u64; 3], s: &[u64; 2]) -> [u64; 3] {
    let mut d = [0u128; 3];
    accum(&mut d, a, r, s);
    carry_reduce(d[0], d[1], d[2])
}

/// Loads a full 16-byte message block into 44/44/42 limbs with the
/// 2^128 marker set (full blocks only — the final padded partial block
/// goes through [`block_step`] with `hibit = 0`).
#[inline(always)]
fn load_block(m: &[u8; 16]) -> [u64; 3] {
    let t0 = le64(&m[0..8]);
    let t1 = le64(&m[8..16]);
    [t0 & M44, ((t0 >> 44) | (t1 << 20)) & M44, ((t1 >> 24) & M42) | (1 << 40)]
}

/// One Poly1305 block step on radix-2^44 limbs: `h = (h + m) · r mod p`,
/// shared verbatim by the scalar and interleaved lane forms so their
/// accumulators evolve identically.
#[inline(always)]
fn block_step(h: &mut [u64; 3], r: &[u64; 3], s: &[u64; 2], m: &[u8; 16], hibit: u64) {
    let t0 = le64(&m[0..8]);
    let t1 = le64(&m[8..16]);
    let a = [
        h[0] + (t0 & M44),
        h[1] + (((t0 >> 44) | (t1 << 20)) & M44),
        h[2] + (((t1 >> 24) & M42) | hibit),
    ];
    *h = mul_limbs(a, r, s);
}

/// `N` full blocks fused into one step using precomputed powers of `r`:
/// `h = (h + m1)·rᴺ + m2·rᴺ⁻¹ + … + mN·r mod p`, algebraically
/// identical to `N` chained [`block_step`]s but with one serial carry
/// chain instead of `N` and `N` independent product groups for the
/// multiplier ports to overlap. `powers[j]` holds `(limbs, folds)` of
/// `r^(N−j)`, so `powers[N−1]` is `r` itself. The limb representation
/// of `h` can differ from the step-at-a-time path mid-stream, yet stays
/// congruent mod `2^130 − 5`, so tags are bit-identical after
/// [`finalize_limbs`]' full reduction (pinned by the
/// `*_matches_scalar` tests). All `N` blocks are full message blocks,
/// so [`load_block`] hardwires the 2^128 marker.
#[inline(always)]
fn block_step_wide<const N: usize>(
    h: &mut [u64; 3],
    powers: &[([u64; 3], [u64; 2])],
    blocks: [&[u8; 16]; N],
) {
    debug_assert_eq!(powers.len(), N);
    let mut d = [0u128; 3];
    for (j, (r, s)) in powers.iter().enumerate() {
        let mut a = load_block(blocks[j]);
        if j == 0 {
            a[0] += h[0];
            a[1] += h[1];
            a[2] += h[2];
        }
        accum(&mut d, a, r, s);
    }
    *h = carry_reduce(d[0], d[1], d[2]);
}

/// Final reduction and serialization shared by the scalar and 4-lane
/// forms: fully reduces `h mod 2^130 − 5`, adds the key pad and returns
/// the 16-byte tag.
#[inline(always)]
fn finalize_limbs(mut h: [u64; 3], pad: [u64; 2]) -> [u8; TAG_LEN] {
    // Fully carry h.
    let mut c = h[1] >> 44;
    h[1] &= M44;
    h[2] += c;
    c = h[2] >> 42;
    h[2] &= M42;
    h[0] += c * 5;
    c = h[0] >> 44;
    h[0] &= M44;
    h[1] += c;
    c = h[1] >> 44;
    h[1] &= M44;
    h[2] += c;
    c = h[2] >> 42;
    h[2] &= M42;
    h[0] += c * 5;
    c = h[0] >> 44;
    h[0] &= M44;
    h[1] += c;

    // Compute g = h + 5 − 2^130 and select it when non-negative.
    let mut g0 = h[0] + 5;
    c = g0 >> 44;
    g0 &= M44;
    let mut g1 = h[1] + c;
    c = g1 >> 44;
    g1 &= M44;
    let g2 = h[2].wrapping_add(c).wrapping_sub(1 << 42);

    // mask = all-ones iff g >= 0 (no borrow out of the top limb).
    let mask = (g2 >> 63).wrapping_sub(1);
    h[0] = (h[0] & !mask) | (g0 & mask);
    h[1] = (h[1] & !mask) | (g1 & mask);
    h[2] = (h[2] & !mask) | (g2 & mask);

    // h = (h + pad) mod 2^128, still in limb form.
    let p = limbs(pad[0], pad[1], [M44, M44, M42]);
    h[0] += p[0];
    c = h[0] >> 44;
    h[0] &= M44;
    h[1] += p[1] + c;
    c = h[1] >> 44;
    h[1] &= M44;
    h[2] = (h[2] + p[2] + c) & M42;

    // Serialize as two little-endian 64-bit words.
    let t0 = h[0] | (h[1] << 44);
    let t1 = (h[1] >> 20) | (h[2] << 24);
    let mut tag = [0u8; TAG_LEN];
    tag[..8].copy_from_slice(&t0.to_le_bytes());
    tag[8..].copy_from_slice(&t1.to_le_bytes());
    tag
}

/// The key clamp in limb form (RFC 8439's `0x0ffffffc...` mask applied at
/// the 44/44/42-bit limb positions).
const CLAMP: [u64; 3] = [0x0ffc_0fff_ffff, 0x0fff_ffc0_ffff, 0x000f_ffff_fc0f];

impl Poly1305 {
    /// Initializes the authenticator from a 32-byte one-time key `r || s`.
    /// `r` is clamped as RFC 8439 requires.
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        let r = limbs(le64(&key[0..8]), le64(&key[8..16]), CLAMP);
        Self {
            r,
            s: [r[1] * 20, r[2] * 20],
            pad: [le64(&key[16..24]), le64(&key[24..32])],
            h: [0; 3],
            buf: [0; 16],
            buf_len: 0,
        }
    }

    /// One 16-byte block; `hibit` is `1 << 40` (the 2^128 marker in the
    /// top limb) for full message blocks and `0` for the final padded
    /// partial block.
    fn block(&mut self, m: &[u8; 16], hibit: u64) {
        let (r, s) = (self.r, self.s);
        block_step(&mut self.h, &r, &s, m, hibit);
    }

    /// Absorbs `data` into the authenticator.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buf_len > 0 {
            let take = (16 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 16 {
                let block = self.buf;
                self.block(&block, 1 << 40);
                self.buf_len = 0;
            }
        }
        while data.len() >= 16 {
            let block: [u8; 16] = data[..16].try_into().expect("16-byte chunk");
            self.block(&block, 1 << 40);
            data = &data[16..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Pads the absorbed length up to a 16-byte boundary with zeros (the
    /// AEAD's `pad16`). A multiple-of-16 length absorbs nothing.
    pub fn pad16(&mut self) {
        if self.buf_len > 0 {
            let zeros = [0u8; 16];
            let pad = 16 - self.buf_len;
            self.update(&zeros[..pad]);
        }
    }

    /// Finalizes and returns the 16-byte tag.
    pub fn finalize(mut self) -> [u8; TAG_LEN] {
        if self.buf_len > 0 {
            // Final partial block: append 0x01 then zeros, hibit = 0.
            let mut block = [0u8; 16];
            block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            block[self.buf_len] = 1;
            self.block(&block, 0);
        }
        finalize_limbs(self.h, self.pad)
    }
}

/// One-shot Poly1305 over `msg` with the one-time key `key`.
pub fn poly1305(key: &[u8; KEY_LEN], msg: &[u8]) -> [u8; TAG_LEN] {
    let mut p = Poly1305::new(key);
    p.update(msg);
    p.finalize()
}

/// `LANES` Poly1305 authenticators in lock-step, limb-interleaved
/// (`h[limb][lane]` — the state of lane `l` lives in column `l` of each
/// limb row, so the field multiplies and carry chains advance together
/// per absorbed block). [`Poly1305x4`] pairs with the 4-lane ChaCha
/// one-time-key derivation, [`Poly1305x8`] with the 8-lane
/// ([`crate::chacha::blocks8`]) one.
///
/// All lanes must absorb the same number of bytes per
/// [`Poly1305xN::update`] call (the batch paths tag equal-length cells,
/// so this costs nothing), which keeps the shared block buffer fill
/// identical across lanes. Lane `l`'s tag equals a scalar [`Poly1305`]
/// run over the concatenation of the `msgs[l]` slices — the same
/// [`block_step`] / [`finalize_limbs`] arithmetic runs on each column.
#[derive(Clone)]
pub struct Poly1305xN<const LANES: usize> {
    /// Per-lane powers of `r` for the fused multi-block steps:
    /// `powers[l][j]` holds `(limbs, folds)` of `r^(4−j)`, so
    /// `powers[l][3]` is `r` itself (used by the single-block and
    /// finalize paths) and `powers[l][0]` is `r⁴`.
    powers: [[([u64; 3], [u64; 2]); 4]; LANES],
    /// Key pads per lane: `pad[word][lane]`.
    pad: [[u64; LANES]; 2],
    /// Accumulators, limb-major.
    h: [[u64; LANES]; 3],
    buf: [[u8; 16]; LANES],
    buf_len: usize,
}

/// Four interleaved authenticators, matching 4-lane one-time keys.
pub type Poly1305x4 = Poly1305xN<4>;
/// Eight interleaved authenticators, matching 8-lane one-time keys.
pub type Poly1305x8 = Poly1305xN<8>;

impl<const LANES: usize> std::fmt::Debug for Poly1305xN<LANES> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material or the accumulators.
        write!(f, "Poly1305x{LANES}(..)")
    }
}

impl<const LANES: usize> Poly1305xN<LANES> {
    /// Initializes `LANES` authenticators from as many one-time keys.
    pub fn new(keys: [&[u8; KEY_LEN]; LANES]) -> Self {
        let lanes = keys.map(Poly1305::new);
        let mut out = Self {
            powers: [[([0; 3], [0; 2]); 4]; LANES],
            pad: [[0; LANES]; 2],
            h: [[0; LANES]; 3],
            buf: [[0; 16]; LANES],
            buf_len: 0,
        };
        for (l, lane) in lanes.iter().enumerate() {
            let (r, s) = (lane.r, lane.s);
            let r2 = mul_limbs(r, &r, &s);
            let s2 = [r2[1] * 20, r2[2] * 20];
            let r3 = mul_limbs(r2, &r, &s);
            let s3 = [r3[1] * 20, r3[2] * 20];
            let r4 = mul_limbs(r2, &r2, &s2);
            let s4 = [r4[1] * 20, r4[2] * 20];
            out.powers[l] = [(r4, s4), (r3, s3), (r2, s2), (r, s)];
            for (word, row) in out.pad.iter_mut().enumerate() {
                row[l] = lane.pad[word];
            }
        }
        out
    }

    /// One 16-byte block per lane; `hibit` as in [`Poly1305::block`]. Each
    /// column runs [`block_step`], so the interleaved state stays
    /// bit-identical to `LANES` scalar authenticators.
    fn block_lanes(&mut self, m: [&[u8; 16]; LANES], hibit: u64) {
        for (l, block) in m.into_iter().enumerate() {
            let mut h = [self.h[0][l], self.h[1][l], self.h[2][l]];
            let (r, s) = self.powers[l][3];
            block_step(&mut h, &r, &s, block, hibit);
            for (row, value) in self.h.iter_mut().zip(h) {
                row[l] = value;
            }
        }
    }

    /// `N` full 16-byte blocks per lane (`N` ∈ {2, 4}) at byte offset
    /// `off` of each lane's message, through the fused
    /// [`block_step_wide`] — one serial carry chain per `N` blocks and
    /// a single accumulator round-trip per lane, with tags unchanged.
    fn block_lanes_wide<const N: usize>(&mut self, msgs: &[&[u8]; LANES], off: usize) {
        for l in 0..LANES {
            let mut h = [self.h[0][l], self.h[1][l], self.h[2][l]];
            let blocks: [&[u8; 16]; N] = std::array::from_fn(|j| {
                msgs[l][off + 16 * j..off + 16 * (j + 1)]
                    .try_into()
                    .expect("16-byte chunk")
            });
            // `powers[4 − N..]` are exactly `rᴺ … r`.
            block_step_wide(&mut h, &self.powers[l][4 - N..], blocks);
            for (row, value) in self.h.iter_mut().zip(h) {
                row[l] = value;
            }
        }
    }

    /// Absorbs one equal-length slice into each lane.
    ///
    /// # Panics
    /// Panics if the slices differ in length.
    pub fn update(&mut self, msgs: [&[u8]; LANES]) {
        let len = msgs.first().map_or(0, |m| m.len());
        assert!(msgs.iter().all(|m| m.len() == len), "lanes must absorb equal lengths");
        let mut off = 0;
        if self.buf_len > 0 {
            let take = (16 - self.buf_len).min(len);
            for (buf, msg) in self.buf.iter_mut().zip(&msgs) {
                buf[self.buf_len..self.buf_len + take].copy_from_slice(&msg[..take]);
            }
            self.buf_len += take;
            off = take;
            if self.buf_len == 16 {
                let blocks = self.buf;
                self.block_lanes(std::array::from_fn(|l| &blocks[l]), 1 << 40);
                self.buf_len = 0;
            }
        }
        while len - off >= 64 {
            self.block_lanes_wide::<4>(&msgs, off);
            off += 64;
        }
        if len - off >= 32 {
            self.block_lanes_wide::<2>(&msgs, off);
            off += 32;
        }
        if len - off >= 16 {
            let blocks: [&[u8; 16]; LANES] =
                std::array::from_fn(|l| msgs[l][off..off + 16].try_into().expect("16-byte chunk"));
            self.block_lanes(blocks, 1 << 40);
            off += 16;
        }
        if off < len {
            for (buf, msg) in self.buf.iter_mut().zip(&msgs) {
                buf[..len - off].copy_from_slice(&msg[off..]);
            }
            self.buf_len = len - off;
        }
    }

    /// Pads every lane's absorbed length up to a 16-byte boundary with
    /// zeros (the AEAD's `pad16`; a no-op on aligned lengths).
    pub fn pad16(&mut self) {
        if self.buf_len > 0 {
            let zeros = [0u8; 16];
            let pad = 16 - self.buf_len;
            self.update([&zeros[..pad]; LANES]);
        }
    }

    /// Finalizes all lanes, returning their tags in lane order. Each
    /// lane runs the scalar trailing-partial-block and [`finalize_limbs`]
    /// path on its column.
    pub fn finalize(self) -> [[u8; TAG_LEN]; LANES] {
        std::array::from_fn(|l| {
            let mut h = [self.h[0][l], self.h[1][l], self.h[2][l]];
            if self.buf_len > 0 {
                let mut block = [0u8; 16];
                block[..self.buf_len].copy_from_slice(&self.buf[l][..self.buf_len]);
                block[self.buf_len] = 1;
                let (r, s) = self.powers[l][3];
                block_step(&mut h, &r, &s, &block, 0);
            }
            finalize_limbs(h, [self.pad[0][l], self.pad[1][l]])
        })
    }
}

/// One tag per cell over equal-shape strided messages: message `i` is
/// `flat[i * stride..i * stride + len]`, tagged under `keys[i]` into
/// `tags[i]`. Cells are processed eight at a time through [`Poly1305x8`]
/// (matching the widest ChaCha lane group), then four through
/// [`Poly1305x4`]; the final leftover takes the scalar path. Identical to
/// a sequential [`poly1305`] loop for any cell count.
///
/// # Panics
/// Panics if `tags.len() != keys.len()`, `flat.len() != keys.len() *
/// stride`, or `len > stride`.
pub fn poly1305_batch(
    keys: &[[u8; KEY_LEN]],
    flat: &[u8],
    stride: usize,
    len: usize,
    tags: &mut [[u8; TAG_LEN]],
) {
    assert_eq!(tags.len(), keys.len(), "one tag slot per key");
    assert_eq!(flat.len(), keys.len() * stride, "flat must hold one stride per key");
    assert!(len <= stride, "message region must fit its stride");
    let mut cell = 0;
    while cell + 8 <= keys.len() {
        let mut mac = Poly1305x8::new(std::array::from_fn(|l| &keys[cell + l]));
        mac.update(std::array::from_fn(|l| {
            let base = (cell + l) * stride;
            &flat[base..base + len]
        }));
        tags[cell..cell + 8].copy_from_slice(&mac.finalize());
        cell += 8;
    }
    while cell + 4 <= keys.len() {
        let mut mac = Poly1305x4::new(std::array::from_fn(|l| &keys[cell + l]));
        mac.update(std::array::from_fn(|l| {
            let base = (cell + l) * stride;
            &flat[base..base + len]
        }));
        tags[cell..cell + 4].copy_from_slice(&mac.finalize());
        cell += 4;
    }
    for i in cell..keys.len() {
        let base = i * stride;
        tags[i] = poly1305(&keys[i], &flat[base..base + len]);
    }
}

/// Constant-time 16-byte tag comparison.
pub fn tags_equal(a: &[u8; TAG_LEN], b: &[u8; TAG_LEN]) -> bool {
    a.iter().zip(b).fold(0u8, |acc, (x, y)| acc | (x ^ y)) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| c.is_ascii_hexdigit()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// RFC 8439 §2.5.2.
    #[test]
    fn rfc8439_vector() {
        let key: [u8; 32] = hex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b")
            .try_into()
            .unwrap();
        let msg = b"Cryptographic Forum Research Group";
        let tag = poly1305(&key, msg);
        assert_eq!(tag.to_vec(), hex("a8061dc1305136c6c22b8baf0c0127a9"));
    }

    /// RFC 8439 §A.3 test vector 1: all-zero key and message.
    #[test]
    fn rfc8439_a3_vector_1() {
        let key = [0u8; 32];
        let msg = [0u8; 64];
        assert_eq!(poly1305(&key, &msg), [0u8; 16]);
    }

    /// RFC 8439 §A.3 test vector 2: r = 0, s = key stream; tag = last
    /// 16 bytes of the text processed... simplified: tag equals s when
    /// r = 0 regardless of the message? No — with r = 0 the accumulator
    /// stays 0 so the tag is exactly s.
    #[test]
    fn zero_r_gives_tag_s() {
        let mut key = [0u8; 32];
        key[16..].copy_from_slice(&hex("36e5f6b5c5e06070f0efca96227a863e"));
        let msg = b"Any submission to the IETF intended by the Contributor";
        assert_eq!(poly1305(&key, msg).to_vec(), hex("36e5f6b5c5e06070f0efca96227a863e"));
    }

    /// RFC 8439 §A.3 test vector 3: s = 0, message of 0xFF exercising
    /// carry propagation.
    #[test]
    fn rfc8439_a3_vector_3() {
        let mut key = [0u8; 32];
        key[..16].copy_from_slice(&hex("36e5f6b5c5e06070f0efca96227a863e"));
        let msg = b"Any submission to the IETF intended by the Contributor for publication as all or part of an IETF Internet-Draft or RFC and any statement made within the context of an IETF activity is considered an \"IETF Contribution\". Such statements include oral statements in IETF sessions, as well as written and electronic communications made at any time or place, which are addressed to";
        assert_eq!(poly1305(&key, msg).to_vec(), hex("f3477e7cd95417af89a6b8794c310cf0"));
    }

    /// RFC 8439 §A.3 vector 10-ish: wraparound at 2^130 - 5. Message block
    /// 0xFFFF..FF with r = 2: (2^128 - 1 + 2^128)·2 mod p exercises the
    /// final-subtraction path.
    #[test]
    fn full_block_of_ones_with_tiny_r() {
        let mut key = [0u8; 32];
        key[0] = 2; // r = 2 (survives clamping)
        let msg = [0xffu8; 16];
        // h = (2^129 - 1)·2 mod (2^130 - 5) = 2^130 - 2 mod p = 3.
        let tag = poly1305(&key, &msg);
        let mut expected = [0u8; 16];
        expected[0] = 3;
        assert_eq!(tag, expected);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let key: [u8; 32] = hex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b")
            .try_into()
            .unwrap();
        let msg: Vec<u8> = (0..217).map(|i| (i * 7 % 256) as u8).collect();
        let one_shot = poly1305(&key, &msg);
        for split in [0usize, 1, 15, 16, 17, 100, 216, 217] {
            let mut p = Poly1305::new(&key);
            p.update(&msg[..split]);
            p.update(&msg[split..]);
            assert_eq!(p.finalize(), one_shot, "split at {split}");
        }
        // Byte-at-a-time.
        let mut p = Poly1305::new(&key);
        for b in &msg {
            p.update(std::slice::from_ref(b));
        }
        assert_eq!(p.finalize(), one_shot);
    }

    #[test]
    fn pad16_absorbs_to_boundary() {
        let key: [u8; 32] = hex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b")
            .try_into()
            .unwrap();
        // update(7 bytes) + pad16 == update(7 bytes ++ 9 zeros).
        let mut a = Poly1305::new(&key);
        a.update(&[1, 2, 3, 4, 5, 6, 7]);
        a.pad16();
        a.update(b"tail");
        let mut b = Poly1305::new(&key);
        b.update(&[1, 2, 3, 4, 5, 6, 7, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        b.update(b"tail");
        assert_eq!(a.finalize(), b.finalize());
        // Already aligned: pad16 is a no-op.
        let mut c = Poly1305::new(&key);
        c.update(&[9u8; 32]);
        c.pad16();
        let mut d = Poly1305::new(&key);
        d.update(&[9u8; 32]);
        assert_eq!(c.finalize(), d.finalize());
    }

    #[test]
    fn different_messages_different_tags() {
        let key: [u8; 32] = hex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b")
            .try_into()
            .unwrap();
        assert_ne!(poly1305(&key, b"message one"), poly1305(&key, b"message two"));
    }

    /// Four interleaved lanes produce exactly the four scalar tags, across
    /// message lengths with and without trailing partial blocks.
    #[test]
    fn x4_matches_scalar() {
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 64, 76, 100, 255, 256, 1024] {
            let keys: [[u8; 32]; 4] = std::array::from_fn(|l| {
                let mut k = [0u8; 32];
                for (i, b) in k.iter_mut().enumerate() {
                    *b = (l * 37 + i * 11 + 5) as u8;
                }
                k
            });
            let msgs: [Vec<u8>; 4] = std::array::from_fn(|l| {
                (0..len).map(|i| ((l + 1) * (i + 3) % 251) as u8).collect()
            });
            let mut mac = Poly1305x4::new([&keys[0], &keys[1], &keys[2], &keys[3]]);
            mac.update(std::array::from_fn(|l| msgs[l].as_slice()));
            let tags = mac.finalize();
            for l in 0..4 {
                assert_eq!(tags[l], poly1305(&keys[l], &msgs[l]), "lane {l}, len {len}");
            }
        }
    }

    /// Eight interleaved lanes produce exactly the eight scalar tags,
    /// across message lengths with and without trailing partial blocks.
    #[test]
    fn x8_matches_scalar() {
        for len in [0usize, 1, 15, 16, 17, 31, 33, 64, 76, 100, 255, 256, 1024] {
            let keys: [[u8; 32]; 8] = std::array::from_fn(|l| {
                let mut k = [0u8; 32];
                for (i, b) in k.iter_mut().enumerate() {
                    *b = (l * 41 + i * 13 + 9) as u8;
                }
                k
            });
            let msgs: [Vec<u8>; 8] = std::array::from_fn(|l| {
                (0..len).map(|i| ((l + 2) * (i + 5) % 251) as u8).collect()
            });
            let mut mac = Poly1305x8::new(std::array::from_fn(|l| &keys[l]));
            mac.update(std::array::from_fn(|l| msgs[l].as_slice()));
            let tags = mac.finalize();
            for l in 0..8 {
                assert_eq!(tags[l], poly1305(&keys[l], &msgs[l]), "lane {l}, len {len}");
            }
        }
    }

    /// RFC 8439 §2.5.2 through the interleaved lanes: every lane of an x8
    /// run over the RFC message reproduces the published tag.
    #[test]
    fn rfc8439_vector_x8() {
        let key: [u8; 32] = hex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b")
            .try_into()
            .unwrap();
        let msg = b"Cryptographic Forum Research Group";
        let expected: Vec<u8> = hex("a8061dc1305136c6c22b8baf0c0127a9");
        let mut mac = Poly1305x8::new([&key; 8]);
        mac.update([msg.as_slice(); 8]);
        for (l, tag) in mac.finalize().iter().enumerate() {
            assert_eq!(tag.to_vec(), expected, "lane {l}");
        }
    }

    /// Split updates and pad16 agree with scalar split updates and pad16.
    #[test]
    fn x4_incremental_and_pad16_match_scalar() {
        let keys: [[u8; 32]; 4] =
            std::array::from_fn(|l| std::array::from_fn(|i| (l * 91 + i * 7 + 1) as u8));
        let msg_a: Vec<u8> = (0..23).map(|i| (i * 3) as u8).collect();
        let msg_b: Vec<u8> = (0..40).map(|i| (i * 5 + 1) as u8).collect();
        let mut mac = Poly1305x4::new([&keys[0], &keys[1], &keys[2], &keys[3]]);
        mac.update([&msg_a; 4]);
        mac.pad16();
        mac.update([&msg_b; 4]);
        let tags = mac.finalize();
        for (l, key) in keys.iter().enumerate() {
            let mut scalar = Poly1305::new(key);
            scalar.update(&msg_a);
            scalar.pad16();
            scalar.update(&msg_b);
            assert_eq!(tags[l], scalar.finalize(), "lane {l}");
        }
    }

    /// The strided one-shot batch covers every remainder class (cell count
    /// mod 8 and mod 4) and gap layouts where `len < stride`.
    #[test]
    fn batch_matches_scalar_loop() {
        for cells in [0usize, 1, 2, 3, 4, 5, 7, 8, 11, 12, 13, 15, 16, 17] {
            for (stride, len) in [(80usize, 76usize), (48, 48), (20, 0), (33, 17)] {
                let keys: Vec<[u8; 32]> = (0..cells)
                    .map(|c| std::array::from_fn(|i| (c * 53 + i * 13 + 2) as u8))
                    .collect();
                let flat: Vec<u8> = (0..cells * stride).map(|i| (i * 7 % 251) as u8).collect();
                let mut tags = vec![[0u8; TAG_LEN]; cells];
                poly1305_batch(&keys, &flat, stride, len, &mut tags);
                for (i, key) in keys.iter().enumerate() {
                    let base = i * stride;
                    assert_eq!(
                        tags[i],
                        poly1305(key, &flat[base..base + len]),
                        "cell {i} of {cells}, stride {stride}, len {len}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn x4_rejects_unequal_lane_lengths() {
        let key = [1u8; 32];
        let mut mac = Poly1305x4::new([&key; 4]);
        mac.update([&[1u8, 2][..], &[1u8][..], &[1u8, 2][..], &[1u8, 2][..]]);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn x8_rejects_unequal_lane_lengths() {
        let key = [1u8; 32];
        let mut mac = Poly1305x8::new([&key; 8]);
        let mut msgs = [&[1u8, 2][..]; 8];
        msgs[5] = &[1u8][..];
        mac.update(msgs);
    }

    #[test]
    fn tags_equal_is_exact() {
        let a = [7u8; 16];
        let mut b = a;
        assert!(tags_equal(&a, &b));
        b[15] ^= 1;
        assert!(!tags_equal(&a, &b));
    }
}
