//! Poly1305 one-time authenticator (RFC 8439 §2.5).
//!
//! Used by the [`crate::aead`] module to build the ChaCha20-Poly1305 AEAD.
//! The implementation is the standard 26-bit-limb ("donna") arithmetic over
//! the field `GF(2^130 − 5)`, verified against the RFC 8439 test vectors.

/// Length of a Poly1305 key (`r || s`).
pub const KEY_LEN: usize = 32;

/// Length of a Poly1305 tag.
pub const TAG_LEN: usize = 16;

#[inline]
fn le32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

/// Incremental Poly1305 state.
///
/// The one-shot [`poly1305`] helper suffices for most callers; the
/// incremental form lets the AEAD feed `aad || pad || ct || pad || lengths`
/// without concatenating buffers.
#[derive(Clone)]
pub struct Poly1305 {
    r: [u32; 5],
    s: [u32; 4],
    h: [u32; 5],
    buf: [u8; 16],
    buf_len: usize,
}

impl std::fmt::Debug for Poly1305 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material or the accumulator.
        write!(f, "Poly1305(..)")
    }
}

impl Poly1305 {
    /// Initializes the authenticator from a 32-byte one-time key `r || s`.
    /// `r` is clamped as RFC 8439 requires.
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        Self {
            r: [
                le32(&key[0..4]) & 0x03ff_ffff,
                (le32(&key[3..7]) >> 2) & 0x03ff_ff03,
                (le32(&key[6..10]) >> 4) & 0x03ff_c0ff,
                (le32(&key[9..13]) >> 6) & 0x03f0_3fff,
                (le32(&key[12..16]) >> 8) & 0x000f_ffff,
            ],
            s: [
                le32(&key[16..20]),
                le32(&key[20..24]),
                le32(&key[24..28]),
                le32(&key[28..32]),
            ],
            h: [0; 5],
            buf: [0; 16],
            buf_len: 0,
        }
    }

    /// One 16-byte block; `hibit` is `1 << 24` for full message blocks and
    /// `0` for the final padded partial block.
    fn block(&mut self, m: &[u8; 16], hibit: u32) {
        let [r0, r1, r2, r3, r4] = self.r.map(u64::from);
        let (s1, s2, s3, s4) = (r1 * 5, r2 * 5, r3 * 5, r4 * 5);

        let h0 = u64::from(self.h[0] + (le32(&m[0..4]) & 0x03ff_ffff));
        let h1 = u64::from(self.h[1] + ((le32(&m[3..7]) >> 2) & 0x03ff_ffff));
        let h2 = u64::from(self.h[2] + ((le32(&m[6..10]) >> 4) & 0x03ff_ffff));
        let h3 = u64::from(self.h[3] + ((le32(&m[9..13]) >> 6) & 0x03ff_ffff));
        let h4 = u64::from(self.h[4] + ((le32(&m[12..16]) >> 8) | hibit));

        let d0 = h0 * r0 + h1 * s4 + h2 * s3 + h3 * s2 + h4 * s1;
        let d1 = h0 * r1 + h1 * r0 + h2 * s4 + h3 * s3 + h4 * s2;
        let d2 = h0 * r2 + h1 * r1 + h2 * r0 + h3 * s4 + h4 * s3;
        let d3 = h0 * r3 + h1 * r2 + h2 * r1 + h3 * r0 + h4 * s4;
        let d4 = h0 * r4 + h1 * r3 + h2 * r2 + h3 * r1 + h4 * r0;

        let mut c = d0 >> 26;
        let mut h = [0u32; 5];
        h[0] = (d0 & 0x03ff_ffff) as u32;
        let d1 = d1 + c;
        c = d1 >> 26;
        h[1] = (d1 & 0x03ff_ffff) as u32;
        let d2 = d2 + c;
        c = d2 >> 26;
        h[2] = (d2 & 0x03ff_ffff) as u32;
        let d3 = d3 + c;
        c = d3 >> 26;
        h[3] = (d3 & 0x03ff_ffff) as u32;
        let d4 = d4 + c;
        c = d4 >> 26;
        h[4] = (d4 & 0x03ff_ffff) as u32;
        h[0] += (c as u32) * 5;
        let carry = h[0] >> 26;
        h[0] &= 0x03ff_ffff;
        h[1] += carry;
        self.h = h;
    }

    /// Absorbs `data` into the authenticator.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buf_len > 0 {
            let take = (16 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 16 {
                let block = self.buf;
                self.block(&block, 1 << 24);
                self.buf_len = 0;
            }
        }
        while data.len() >= 16 {
            let block: [u8; 16] = data[..16].try_into().expect("16-byte chunk");
            self.block(&block, 1 << 24);
            data = &data[16..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Pads the absorbed length up to a 16-byte boundary with zeros (the
    /// AEAD's `pad16`). A multiple-of-16 length absorbs nothing.
    pub fn pad16(&mut self) {
        if self.buf_len > 0 {
            let zeros = [0u8; 16];
            let pad = 16 - self.buf_len;
            self.update(&zeros[..pad]);
        }
    }

    /// Finalizes and returns the 16-byte tag.
    pub fn finalize(mut self) -> [u8; TAG_LEN] {
        if self.buf_len > 0 {
            // Final partial block: append 0x01 then zeros, hibit = 0.
            let mut block = [0u8; 16];
            block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            block[self.buf_len] = 1;
            self.block(&block, 0);
        }

        // Fully reduce h mod 2^130 - 5.
        let mut h = self.h;
        let mut c = h[1] >> 26;
        h[1] &= 0x03ff_ffff;
        h[2] += c;
        c = h[2] >> 26;
        h[2] &= 0x03ff_ffff;
        h[3] += c;
        c = h[3] >> 26;
        h[3] &= 0x03ff_ffff;
        h[4] += c;
        c = h[4] >> 26;
        h[4] &= 0x03ff_ffff;
        h[0] += c * 5;
        c = h[0] >> 26;
        h[0] &= 0x03ff_ffff;
        h[1] += c;

        // Compute h + -p = h - (2^130 - 5) and select it if non-negative.
        let mut g = [0u32; 5];
        g[0] = h[0].wrapping_add(5);
        c = g[0] >> 26;
        g[0] &= 0x03ff_ffff;
        for i in 1..4 {
            g[i] = h[i].wrapping_add(c);
            c = g[i] >> 26;
            g[i] &= 0x03ff_ffff;
        }
        g[4] = h[4].wrapping_add(c).wrapping_sub(1 << 26);

        // mask = all-ones iff g >= 0 (no borrow out of the top limb).
        let mask = (g[4] >> 31).wrapping_sub(1);
        for i in 0..5 {
            h[i] = (h[i] & !mask) | (g[i] & mask);
        }

        // Serialize h as 128 bits little-endian and add s.
        let h0 = h[0] | (h[1] << 26);
        let h1 = (h[1] >> 6) | (h[2] << 20);
        let h2 = (h[2] >> 12) | (h[3] << 14);
        let h3 = (h[3] >> 18) | (h[4] << 8);

        let mut acc = u64::from(h0) + u64::from(self.s[0]);
        let t0 = acc as u32;
        acc = u64::from(h1) + u64::from(self.s[1]) + (acc >> 32);
        let t1 = acc as u32;
        acc = u64::from(h2) + u64::from(self.s[2]) + (acc >> 32);
        let t2 = acc as u32;
        acc = u64::from(h3) + u64::from(self.s[3]) + (acc >> 32);
        let t3 = acc as u32;

        let mut tag = [0u8; TAG_LEN];
        tag[0..4].copy_from_slice(&t0.to_le_bytes());
        tag[4..8].copy_from_slice(&t1.to_le_bytes());
        tag[8..12].copy_from_slice(&t2.to_le_bytes());
        tag[12..16].copy_from_slice(&t3.to_le_bytes());
        tag
    }
}

/// One-shot Poly1305 over `msg` with the one-time key `key`.
pub fn poly1305(key: &[u8; KEY_LEN], msg: &[u8]) -> [u8; TAG_LEN] {
    let mut p = Poly1305::new(key);
    p.update(msg);
    p.finalize()
}

/// Constant-time 16-byte tag comparison.
pub fn tags_equal(a: &[u8; TAG_LEN], b: &[u8; TAG_LEN]) -> bool {
    a.iter().zip(b).fold(0u8, |acc, (x, y)| acc | (x ^ y)) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| c.is_ascii_hexdigit()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// RFC 8439 §2.5.2.
    #[test]
    fn rfc8439_vector() {
        let key: [u8; 32] = hex(
            "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b",
        )
        .try_into()
        .unwrap();
        let msg = b"Cryptographic Forum Research Group";
        let tag = poly1305(&key, msg);
        assert_eq!(tag.to_vec(), hex("a8061dc1305136c6c22b8baf0c0127a9"));
    }

    /// RFC 8439 §A.3 test vector 1: all-zero key and message.
    #[test]
    fn rfc8439_a3_vector_1() {
        let key = [0u8; 32];
        let msg = [0u8; 64];
        assert_eq!(poly1305(&key, &msg), [0u8; 16]);
    }

    /// RFC 8439 §A.3 test vector 2: r = 0, s = key stream; tag = last
    /// 16 bytes of the text processed... simplified: tag equals s when
    /// r = 0 regardless of the message? No — with r = 0 the accumulator
    /// stays 0 so the tag is exactly s.
    #[test]
    fn zero_r_gives_tag_s() {
        let mut key = [0u8; 32];
        key[16..].copy_from_slice(&hex("36e5f6b5c5e06070f0efca96227a863e"));
        let msg = b"Any submission to the IETF intended by the Contributor";
        assert_eq!(poly1305(&key, msg).to_vec(), hex("36e5f6b5c5e06070f0efca96227a863e"));
    }

    /// RFC 8439 §A.3 test vector 3: s = 0, message of 0xFF exercising
    /// carry propagation.
    #[test]
    fn rfc8439_a3_vector_3() {
        let mut key = [0u8; 32];
        key[..16].copy_from_slice(&hex("36e5f6b5c5e06070f0efca96227a863e"));
        let msg = b"Any submission to the IETF intended by the Contributor for publication as all or part of an IETF Internet-Draft or RFC and any statement made within the context of an IETF activity is considered an \"IETF Contribution\". Such statements include oral statements in IETF sessions, as well as written and electronic communications made at any time or place, which are addressed to";
        assert_eq!(
            poly1305(&key, msg).to_vec(),
            hex("f3477e7cd95417af89a6b8794c310cf0")
        );
    }

    /// RFC 8439 §A.3 vector 10-ish: wraparound at 2^130 - 5. Message block
    /// 0xFFFF..FF with r = 2: (2^128 - 1 + 2^128)·2 mod p exercises the
    /// final-subtraction path.
    #[test]
    fn full_block_of_ones_with_tiny_r() {
        let mut key = [0u8; 32];
        key[0] = 2; // r = 2 (survives clamping)
        let msg = [0xffu8; 16];
        // h = (2^129 - 1)·2 mod (2^130 - 5) = 2^130 - 2 mod p = 3.
        let tag = poly1305(&key, &msg);
        let mut expected = [0u8; 16];
        expected[0] = 3;
        assert_eq!(tag, expected);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let key: [u8; 32] = hex(
            "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b",
        )
        .try_into()
        .unwrap();
        let msg: Vec<u8> = (0..217).map(|i| (i * 7 % 256) as u8).collect();
        let one_shot = poly1305(&key, &msg);
        for split in [0usize, 1, 15, 16, 17, 100, 216, 217] {
            let mut p = Poly1305::new(&key);
            p.update(&msg[..split]);
            p.update(&msg[split..]);
            assert_eq!(p.finalize(), one_shot, "split at {split}");
        }
        // Byte-at-a-time.
        let mut p = Poly1305::new(&key);
        for b in &msg {
            p.update(std::slice::from_ref(b));
        }
        assert_eq!(p.finalize(), one_shot);
    }

    #[test]
    fn pad16_absorbs_to_boundary() {
        let key: [u8; 32] = hex(
            "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b",
        )
        .try_into()
        .unwrap();
        // update(7 bytes) + pad16 == update(7 bytes ++ 9 zeros).
        let mut a = Poly1305::new(&key);
        a.update(&[1, 2, 3, 4, 5, 6, 7]);
        a.pad16();
        a.update(b"tail");
        let mut b = Poly1305::new(&key);
        b.update(&[1, 2, 3, 4, 5, 6, 7, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        b.update(b"tail");
        assert_eq!(a.finalize(), b.finalize());
        // Already aligned: pad16 is a no-op.
        let mut c = Poly1305::new(&key);
        c.update(&[9u8; 32]);
        c.pad16();
        let mut d = Poly1305::new(&key);
        d.update(&[9u8; 32]);
        assert_eq!(c.finalize(), d.finalize());
    }

    #[test]
    fn different_messages_different_tags() {
        let key: [u8; 32] = hex(
            "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b",
        )
        .try_into()
        .unwrap();
        assert_ne!(poly1305(&key, b"message one"), poly1305(&key, b"message two"));
    }

    #[test]
    fn tags_equal_is_exact() {
        let a = [7u8; 16];
        let mut b = a;
        assert!(tags_equal(&a, &b));
        b[15] ^= 1;
        assert!(!tags_equal(&a, &b));
    }
}
