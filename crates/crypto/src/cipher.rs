//! IND-CPA symmetric encryption: ChaCha20 in counter mode with a fresh
//! random 96-bit nonce per encryption.
//!
//! DP-RAM (Section 6) assumes an IND-CPA scheme `(Enc, Dec)`: every
//! overwrite uploads a *freshly randomized* ciphertext so the adversary
//! cannot tell whether the underlying block changed. Equal-length plaintexts
//! produce equal-length ciphertexts, which the balls-and-bins model requires
//! (all balls look alike).
//!
//! A 4-byte keyed integrity tag (truncated Poly1305 under a one-time key
//! derived RFC 8439-style from a separate MAC key and the nonce) is
//! appended so that tests and the simulated server can detect accidental
//! corruption; this is a robustness aid, not an authenticity claim (the
//! paper's adversary is honest-but-curious). Poly1305 keeps the tag a few
//! ChaCha-block-equivalents of work, so tagging never dominates the
//! per-query crypto the benches measure.

use crate::chacha;
use crate::poly1305::{Poly1305, Poly1305xN};
use crate::rng::ChaChaRng;

/// Length of the integrity tag appended to each ciphertext.
const TAG_LEN: usize = 4;

/// Errors produced by the crypto layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// Ciphertext shorter than a nonce + tag, or truncated.
    Malformed,
    /// Integrity tag mismatch: wrong key or corrupted ciphertext.
    TagMismatch,
}

impl std::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CryptoError::Malformed => write!(f, "ciphertext is malformed"),
            CryptoError::TagMismatch => write!(f, "ciphertext integrity tag mismatch"),
        }
    }
}

impl std::error::Error for CryptoError {}

/// A 256-bit symmetric key.
#[derive(Clone)]
pub struct Key {
    enc: [u8; chacha::KEY_LEN],
    mac: [u8; chacha::KEY_LEN],
}

impl Key {
    /// Samples a fresh random key.
    pub fn generate(rng: &mut ChaChaRng) -> Self {
        let mut enc = [0u8; chacha::KEY_LEN];
        let mut mac = [0u8; chacha::KEY_LEN];
        rng.fill_bytes(&mut enc);
        rng.fill_bytes(&mut mac);
        Self { enc, mac }
    }
}

impl std::fmt::Debug for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "Key(..)")
    }
}

/// An encrypted block: `nonce || body || tag`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Ciphertext(pub Vec<u8>);

impl Ciphertext {
    /// Total length in bytes (what the server stores and transfers).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the ciphertext is empty (never the case for valid output).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// The ciphertext expansion over the plaintext, in bytes.
pub const CIPHERTEXT_OVERHEAD: usize = chacha::NONCE_LEN + TAG_LEN;

/// ChaCha20-CTR cipher with per-encryption random nonces.
#[derive(Clone, Debug)]
pub struct BlockCipher {
    key: Key,
}

impl BlockCipher {
    /// Creates a cipher from an existing key.
    pub fn new(key: Key) -> Self {
        Self { key }
    }

    /// Samples a fresh key and builds a cipher from it.
    pub fn generate(rng: &mut ChaChaRng) -> Self {
        Self::new(Key::generate(rng))
    }

    /// Encrypts `plaintext` with a fresh random nonce drawn from `rng`.
    /// Calling this twice on the same plaintext yields different
    /// ciphertexts (IND-CPA re-randomization).
    pub fn encrypt(&self, plaintext: &[u8], rng: &mut ChaChaRng) -> Ciphertext {
        let mut out = Vec::new();
        self.encrypt_into(plaintext, &mut out, rng);
        Ciphertext(out)
    }

    /// Encrypts `plaintext` into `out` (cleared first) with a fresh random
    /// nonce. Performs no heap allocation once `out` has capacity for
    /// `plaintext.len() + CIPHERTEXT_OVERHEAD` bytes — the hot-path form of
    /// [`BlockCipher::encrypt`] for callers with a reusable scratch buffer.
    pub fn encrypt_into(&self, plaintext: &[u8], out: &mut Vec<u8>, rng: &mut ChaChaRng) {
        let mut nonce = [0u8; chacha::NONCE_LEN];
        rng.fill_bytes(&mut nonce);
        out.clear();
        out.reserve(plaintext.len() + CIPHERTEXT_OVERHEAD);
        out.extend_from_slice(&nonce);
        out.extend_from_slice(plaintext);
        chacha::xor_keystream(&self.key.enc, 0, &nonce, &mut out[chacha::NONCE_LEN..]);
        let tag = self.tag(out);
        out.extend_from_slice(&tag);
    }

    /// Deterministic slice-form encryption: writes `nonce || body || tag`
    /// into `out`, which must be exactly `plaintext.len() +
    /// CIPHERTEXT_OVERHEAD` bytes. This is the parallel-batch primitive —
    /// the caller draws every nonce up front on one thread
    /// ([`ChaChaRng::draw_nonces`](crate::rng::ChaChaRng::draw_nonces)) and
    /// worker threads encrypt disjoint cells into disjoint slots, producing
    /// output byte-identical to a sequential [`BlockCipher::encrypt_into`]
    /// loop over the same RNG stream.
    ///
    /// # Panics
    /// Panics if `out.len() != plaintext.len() + CIPHERTEXT_OVERHEAD`.
    pub fn encrypt_with_nonce_into(
        &self,
        nonce: &[u8; chacha::NONCE_LEN],
        plaintext: &[u8],
        out: &mut [u8],
    ) {
        assert_eq!(
            out.len(),
            plaintext.len() + CIPHERTEXT_OVERHEAD,
            "output slot must be plaintext + overhead"
        );
        let body_end = chacha::NONCE_LEN + plaintext.len();
        out[..chacha::NONCE_LEN].copy_from_slice(nonce);
        out[chacha::NONCE_LEN..body_end].copy_from_slice(plaintext);
        chacha::xor_keystream(&self.key.enc, 0, nonce, &mut out[chacha::NONCE_LEN..body_end]);
        let tag = self.tag(&out[..body_end]);
        out[body_end..].copy_from_slice(&tag);
    }

    /// Decrypts a ciphertext, verifying its integrity tag.
    pub fn decrypt(&self, ciphertext: &Ciphertext) -> Result<Vec<u8>, CryptoError> {
        let mut out = Vec::new();
        self.decrypt_into(&ciphertext.0, &mut out)?;
        Ok(out)
    }

    /// Decrypts raw ciphertext bytes into `out` (cleared first), verifying
    /// the integrity tag. Performs no heap allocation once `out` has
    /// capacity — the zero-copy read path hands borrowed cell slices
    /// straight to this.
    pub fn decrypt_into(&self, data: &[u8], out: &mut Vec<u8>) -> Result<(), CryptoError> {
        if data.len() < CIPHERTEXT_OVERHEAD {
            return Err(CryptoError::Malformed);
        }
        let (body, tag) = data.split_at(data.len() - TAG_LEN);
        if self.tag(body) != tag {
            return Err(CryptoError::TagMismatch);
        }
        let nonce: [u8; chacha::NONCE_LEN] =
            body[..chacha::NONCE_LEN].try_into().expect("nonce prefix");
        out.clear();
        out.extend_from_slice(&body[chacha::NONCE_LEN..]);
        chacha::xor_keystream(&self.key.enc, 0, &nonce, out);
        Ok(())
    }

    /// Deterministic slice-form decryption: verifies the tag and writes the
    /// plaintext into the first `data.len() - CIPHERTEXT_OVERHEAD` bytes of
    /// `out`, returning that length. `out` is untouched on error. The
    /// parallel-batch counterpart of [`BlockCipher::encrypt_with_nonce_into`].
    ///
    /// # Panics
    /// Panics if `out` is shorter than the plaintext.
    pub fn decrypt_to_slice(&self, data: &[u8], out: &mut [u8]) -> Result<usize, CryptoError> {
        if data.len() < CIPHERTEXT_OVERHEAD {
            return Err(CryptoError::Malformed);
        }
        let (body, tag) = data.split_at(data.len() - TAG_LEN);
        if self.tag(body) != tag {
            return Err(CryptoError::TagMismatch);
        }
        let nonce: [u8; chacha::NONCE_LEN] =
            body[..chacha::NONCE_LEN].try_into().expect("nonce prefix");
        let pt_len = body.len() - chacha::NONCE_LEN;
        out[..pt_len].copy_from_slice(&body[chacha::NONCE_LEN..]);
        chacha::xor_keystream(&self.key.enc, 0, &nonce, &mut out[..pt_len]);
        Ok(pt_len)
    }

    /// Decrypts `buf` in place: on success `buf` holds the plaintext (the
    /// nonce prefix and tag suffix are stripped); on failure `buf` is
    /// unchanged. No heap allocation ever.
    pub fn decrypt_in_place(&self, buf: &mut Vec<u8>) -> Result<(), CryptoError> {
        if buf.len() < CIPHERTEXT_OVERHEAD {
            return Err(CryptoError::Malformed);
        }
        let body_len = buf.len() - TAG_LEN;
        let (body, tag) = buf.split_at(body_len);
        if self.tag(body) != tag {
            return Err(CryptoError::TagMismatch);
        }
        let nonce: [u8; chacha::NONCE_LEN] =
            buf[..chacha::NONCE_LEN].try_into().expect("nonce prefix");
        chacha::xor_keystream(&self.key.enc, 0, &nonce, &mut buf[chacha::NONCE_LEN..body_len]);
        buf.copy_within(chacha::NONCE_LEN..body_len, 0);
        buf.truncate(body_len - chacha::NONCE_LEN);
        Ok(())
    }

    /// Encrypts `nonces.len()` equal-length plaintexts packed back-to-back
    /// in `plaintexts` into equal-length `nonce || body || tag` slots of
    /// `out`, one pre-drawn nonce per cell. Byte-identical to a
    /// [`BlockCipher::encrypt_with_nonce_into`] loop over the cells, but
    /// runs the wide keystream across cells (different nonces per
    /// permutation pass when cells are short) and batches the Poly1305
    /// one-time-key derivation and tag arithmetic in groups of 8, then 4,
    /// cells at a time.
    ///
    /// # Panics
    /// Panics if `plaintexts.len()` is not `nonces.len()` equal strides or
    /// `out.len() != nonces.len() * (stride + CIPHERTEXT_OVERHEAD)`.
    pub fn encrypt_batch_with_nonces(
        &self,
        nonces: &[chacha::Nonce],
        plaintexts: &[u8],
        out: &mut [u8],
    ) {
        let cells = nonces.len();
        if cells == 0 {
            assert!(plaintexts.is_empty() && out.is_empty(), "bytes without nonces");
            return;
        }
        assert_eq!(plaintexts.len() % cells, 0, "plaintext length not a multiple of cell count");
        let pt_stride = plaintexts.len() / cells;
        let ct_stride = pt_stride + CIPHERTEXT_OVERHEAD;
        assert_eq!(out.len(), cells * ct_stride, "output must hold every ciphertext");

        // Lay out nonce || plaintext per slot, then encrypt every body in
        // one wide strided pass.
        for (i, nonce) in nonces.iter().enumerate() {
            let slot = &mut out[i * ct_stride..(i + 1) * ct_stride];
            slot[..chacha::NONCE_LEN].copy_from_slice(nonce);
            slot[chacha::NONCE_LEN..chacha::NONCE_LEN + pt_stride]
                .copy_from_slice(&plaintexts[i * pt_stride..(i + 1) * pt_stride]);
        }
        chacha::xor_keystream_batch_strided(
            &self.key.enc,
            0,
            nonces,
            out,
            ct_stride,
            chacha::NONCE_LEN,
            pt_stride,
        );

        // Tag phase: derive a group's one-time keys per wide pass and run
        // the group's tags' field arithmetic interleaved, 8 then 4 cells
        // at a time.
        let msg_len = ct_stride - TAG_LEN;
        let mut cell = 0;
        while cell + 8 <= cells {
            let (_, tags) = self.group_tags::<8>(out, cell, ct_stride, msg_len);
            for (l, full_tag) in tags.iter().enumerate() {
                let base = (cell + l) * ct_stride;
                out[base + msg_len..base + ct_stride].copy_from_slice(&full_tag[..TAG_LEN]);
            }
            cell += 8;
        }
        while cell + 4 <= cells {
            let (_, tags) = self.group_tags::<4>(out, cell, ct_stride, msg_len);
            for (l, full_tag) in tags.iter().enumerate() {
                let base = (cell + l) * ct_stride;
                out[base + msg_len..base + ct_stride].copy_from_slice(&full_tag[..TAG_LEN]);
            }
            cell += 4;
        }
        for i in cell..cells {
            let base = i * ct_stride;
            let tag = self.tag(&out[base..base + msg_len]);
            out[base + msg_len..base + ct_stride].copy_from_slice(&tag);
        }
    }

    /// Computes the full (untruncated) Poly1305 tags of the `N` cells
    /// starting at `cell`, laid out in `flat` at `ct_stride`: nonces are
    /// read from the slot prefixes, the `N` one-time keys derive in wide
    /// ChaCha passes ([`chacha::blocks_each`], one 8-lane AVX2 pass when
    /// `N = 8` and the tier allows), and the `N` tags' field arithmetic
    /// runs interleaved. Returns the group's nonces alongside the tags.
    fn group_tags<const N: usize>(
        &self,
        flat: &[u8],
        cell: usize,
        ct_stride: usize,
        msg_len: usize,
    ) -> ([chacha::Nonce; N], [[u8; 16]; N]) {
        let nonces: [chacha::Nonce; N] = std::array::from_fn(|l| {
            flat[(cell + l) * ct_stride..(cell + l) * ct_stride + chacha::NONCE_LEN]
                .try_into()
                .expect("nonce prefix")
        });
        let nonce_refs: [&chacha::Nonce; N] = std::array::from_fn(|l| &nonces[l]);
        let mut otk_blocks = [[0u8; chacha::BLOCK_LEN]; N];
        chacha::blocks_each(&self.key.mac, &[0; N], &nonce_refs, &mut otk_blocks);
        let otks: [[u8; 32]; N] =
            std::array::from_fn(|l| otk_blocks[l][..32].try_into().expect("32-byte prefix"));
        let mut mac = Poly1305xN::<N>::new(std::array::from_fn(|l| &otks[l]));
        mac.update(std::array::from_fn(|l| {
            let base = (cell + l) * ct_stride;
            &flat[base..base + msg_len]
        }));
        (nonces, mac.finalize())
    }

    /// Verifies and decrypts the `N` cells starting at `cell` of a strided
    /// batch: checks every truncated tag (constant-time within the group),
    /// copies the bodies into their plaintext slots and strips the
    /// keystream in one wide strided pass. The group engine behind
    /// [`BlockCipher::decrypt_batch_to_slices`].
    fn decrypt_group<const N: usize>(
        &self,
        ciphertexts: &[u8],
        cell: usize,
        ct_stride: usize,
        msg_len: usize,
        out: &mut [u8],
    ) -> Result<(), CryptoError> {
        let pt_stride = msg_len - chacha::NONCE_LEN;
        let (group_nonces, tags) = self.group_tags::<N>(ciphertexts, cell, ct_stride, msg_len);
        for (l, full_tag) in tags.iter().enumerate() {
            let base = (cell + l) * ct_stride;
            let stored = &ciphertexts[base + msg_len..base + ct_stride];
            // Constant-time comparison of the truncated tag.
            let diff = full_tag[..TAG_LEN]
                .iter()
                .zip(stored)
                .fold(0u8, |acc, (a, b)| acc | (a ^ b));
            if diff != 0 {
                return Err(CryptoError::TagMismatch);
            }
        }
        for l in 0..N {
            let base = (cell + l) * ct_stride;
            out[(cell + l) * pt_stride..(cell + l + 1) * pt_stride]
                .copy_from_slice(&ciphertexts[base + chacha::NONCE_LEN..base + msg_len]);
        }
        let group_out = &mut out[cell * pt_stride..(cell + N) * pt_stride];
        chacha::xor_keystream_batch_strided(
            &self.key.enc,
            0,
            &group_nonces,
            group_out,
            pt_stride,
            0,
            pt_stride,
        );
        Ok(())
    }

    /// Decrypts `cells` equal-length ciphertexts packed back-to-back in
    /// `ciphertexts` into the equal-length plaintext slots of `out`,
    /// verifying every tag (8, then 4, cells' tags checked per interleaved
    /// pass). On failure, returns the error of the lowest-indexed bad cell
    /// and the contents of `out` are unspecified. The batch twin of
    /// [`BlockCipher::decrypt_to_slice`].
    ///
    /// # Panics
    /// Panics if the flat lengths are inconsistent with `cells`.
    pub fn decrypt_batch_to_slices(
        &self,
        ciphertexts: &[u8],
        cells: usize,
        out: &mut [u8],
    ) -> Result<(), CryptoError> {
        if cells == 0 {
            assert!(ciphertexts.is_empty() && out.is_empty(), "bytes without cells");
            return Ok(());
        }
        assert_eq!(ciphertexts.len() % cells, 0, "ciphertext length not a multiple of cell count");
        let ct_stride = ciphertexts.len() / cells;
        if ct_stride < CIPHERTEXT_OVERHEAD {
            return Err(CryptoError::Malformed);
        }
        let pt_stride = ct_stride - CIPHERTEXT_OVERHEAD;
        assert_eq!(out.len(), cells * pt_stride, "output must hold every plaintext");
        let msg_len = ct_stride - TAG_LEN;

        let mut cell = 0;
        while cell + 8 <= cells {
            self.decrypt_group::<8>(ciphertexts, cell, ct_stride, msg_len, out)?;
            cell += 8;
        }
        while cell + 4 <= cells {
            self.decrypt_group::<4>(ciphertexts, cell, ct_stride, msg_len, out)?;
            cell += 4;
        }
        for i in cell..cells {
            let ct = &ciphertexts[i * ct_stride..(i + 1) * ct_stride];
            self.decrypt_to_slice(ct, &mut out[i * pt_stride..(i + 1) * pt_stride])?;
        }
        Ok(())
    }

    /// Truncated Poly1305 over `nonce || body` under a one-time key derived
    /// from the MAC key and the nonce (the RFC 8439 §2.6 construction, but
    /// keyed by the independent MAC key so it never overlaps the
    /// encryption keystream).
    fn tag(&self, nonce_and_body: &[u8]) -> [u8; TAG_LEN] {
        let nonce: [u8; chacha::NONCE_LEN] = nonce_and_body[..chacha::NONCE_LEN]
            .try_into()
            .expect("nonce prefix");
        let block = chacha::block(&self.key.mac, 0, &nonce);
        let one_time_key: [u8; 32] = block[..32].try_into().expect("32-byte prefix");
        let mut mac = Poly1305::new(&one_time_key);
        mac.update(nonce_and_body);
        let digest = mac.finalize();
        digest[..TAG_LEN].try_into().expect("tag prefix")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cipher(seed: u64) -> (BlockCipher, ChaChaRng) {
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let cipher = BlockCipher::generate(&mut rng);
        (cipher, rng)
    }

    #[test]
    fn round_trip() {
        let (cipher, mut rng) = cipher(1);
        for len in [0usize, 1, 16, 64, 65, 1000, 4096] {
            let plaintext: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let ct = cipher.encrypt(&plaintext, &mut rng);
            assert_eq!(cipher.decrypt(&ct).unwrap(), plaintext, "len {len}");
        }
    }

    #[test]
    fn fresh_randomness_per_encryption() {
        let (cipher, mut rng) = cipher(2);
        let pt = vec![0xabu8; 64];
        let c1 = cipher.encrypt(&pt, &mut rng);
        let c2 = cipher.encrypt(&pt, &mut rng);
        assert_ne!(c1, c2, "re-encryption must re-randomize");
        assert_eq!(cipher.decrypt(&c1).unwrap(), cipher.decrypt(&c2).unwrap());
    }

    #[test]
    fn equal_length_plaintexts_give_equal_length_ciphertexts() {
        let (cipher, mut rng) = cipher(3);
        let a = cipher.encrypt(&[0u8; 128], &mut rng);
        let b = cipher.encrypt(&[0xffu8; 128], &mut rng);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), 128 + CIPHERTEXT_OVERHEAD);
    }

    #[test]
    fn wrong_key_is_rejected() {
        let (cipher_a, mut rng) = cipher(4);
        let (cipher_b, _) = cipher(5);
        let ct = cipher_a.encrypt(b"secret", &mut rng);
        assert_eq!(cipher_b.decrypt(&ct), Err(CryptoError::TagMismatch));
    }

    #[test]
    fn corruption_is_detected() {
        let (cipher, mut rng) = cipher(6);
        let mut ct = cipher.encrypt(b"some block contents", &mut rng);
        let mid = ct.0.len() / 2;
        ct.0[mid] ^= 0x01;
        assert_eq!(cipher.decrypt(&ct), Err(CryptoError::TagMismatch));
    }

    /// The batch entry points are byte-identical to per-cell loops for
    /// every cell count remainder class and stride.
    #[test]
    fn batch_matches_sequential_loop() {
        let (cipher, mut rng) = cipher(8);
        for cells in [1usize, 2, 3, 4, 5, 7, 8, 9, 11, 12, 13, 16, 17] {
            for pt_stride in [0usize, 1, 16, 33, 64, 100, 256, 300] {
                let plaintexts: Vec<u8> =
                    (0..cells * pt_stride).map(|i| (i * 17 % 251) as u8).collect();
                let nonces = rng.draw_nonces(cells);
                let ct_stride = pt_stride + CIPHERTEXT_OVERHEAD;
                let mut batch = vec![0u8; cells * ct_stride];
                cipher.encrypt_batch_with_nonces(&nonces, &plaintexts, &mut batch);
                let mut seq = vec![0u8; cells * ct_stride];
                for i in 0..cells {
                    cipher.encrypt_with_nonce_into(
                        &nonces[i],
                        &plaintexts[i * pt_stride..(i + 1) * pt_stride],
                        &mut seq[i * ct_stride..(i + 1) * ct_stride],
                    );
                }
                assert_eq!(batch, seq, "cells {cells} stride {pt_stride}");
                let mut back = vec![0u8; cells * pt_stride];
                cipher.decrypt_batch_to_slices(&batch, cells, &mut back).unwrap();
                assert_eq!(back, plaintexts, "cells {cells} stride {pt_stride}");
            }
        }
    }

    /// Batch decryption reports corruption in any cell (8-cell group,
    /// 4-cell group, and scalar remainder cells alike).
    #[test]
    fn batch_decrypt_detects_corruption_everywhere() {
        let (cipher, mut rng) = cipher(9);
        let cells = 13;
        let pt_stride = 40;
        let plaintexts = vec![0xCDu8; cells * pt_stride];
        let nonces = rng.draw_nonces(cells);
        let ct_stride = pt_stride + CIPHERTEXT_OVERHEAD;
        let mut cts = vec![0u8; cells * ct_stride];
        cipher.encrypt_batch_with_nonces(&nonces, &plaintexts, &mut cts);
        let mut out = vec![0u8; cells * pt_stride];
        for bad_cell in 0..cells {
            let mut corrupted = cts.clone();
            corrupted[bad_cell * ct_stride + 20] ^= 1;
            assert_eq!(
                cipher.decrypt_batch_to_slices(&corrupted, cells, &mut out),
                Err(CryptoError::TagMismatch),
                "cell {bad_cell}"
            );
        }
        assert!(cipher.decrypt_batch_to_slices(&cts, cells, &mut out).is_ok());
    }

    /// A stride shorter than the overhead is malformed, matching the
    /// sequential `decrypt_to_slice` error for the first cell.
    #[test]
    fn batch_decrypt_short_stride_is_malformed() {
        let (cipher, _) = cipher(10);
        let data = vec![0u8; 2 * (CIPHERTEXT_OVERHEAD - 1)];
        assert_eq!(cipher.decrypt_batch_to_slices(&data, 2, &mut []), Err(CryptoError::Malformed));
    }

    #[test]
    fn truncated_ciphertext_is_malformed() {
        let (cipher, _) = cipher(7);
        assert_eq!(
            cipher.decrypt(&Ciphertext(vec![0u8; CIPHERTEXT_OVERHEAD - 1])),
            Err(CryptoError::Malformed)
        );
    }
}
