//! Runtime ISA tier selection for the wide crypto cores.
//!
//! The ChaCha20 wide core ships three implementations — portable lane
//! loops, SSE2 4-lane, and AVX2 8-lane ([`crate::chacha`]) — that compute
//! byte-identical keystreams. Which one runs is decided **once per
//! process** here: the widest tier the CPU supports is detected at first
//! use (`is_x86_feature_detected!`), cached, and consulted by every bulk
//! entry point. SSE2 is part of the x86-64 baseline ABI so it is a
//! compile-time fact; AVX2 is not, so it must be a runtime one — the same
//! binary runs 8-lane on the CI Xeon and 4-lane on an older box.
//!
//! The `DPS_FORCE_ISA` environment variable pins the tier below the
//! detected one (`portable`, `sse2` or `avx2`), letting tests and benches
//! run every implementation on one machine — CI runs the full crypto
//! suite once per tier. Forcing a tier the CPU (or target) cannot run is
//! a configuration error and fails fast with a typed [`ForceIsaError`].
//!
//! This ladder is the template for future ISA extensions (AVX-512, NEON):
//! add a tier above the current top, one audited unsafe module, and the
//! byte-identity proptests pin it against the tiers below.

use std::sync::OnceLock;

/// Environment variable pinning the dispatch tier (`portable`, `sse2`,
/// `avx2`). Read once, at the first wide-core call of the process.
pub const FORCE_ISA_ENV: &str = "DPS_FORCE_ISA";

/// An implementation tier of the wide crypto cores, ordered from
/// narrowest to widest. [`tier`] returns the widest tier the running CPU
/// supports (or the forced one); every tier at or below it is runnable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum IsaTier {
    /// Lane loops over plain `u32` arrays; compiles and runs everywhere.
    Portable,
    /// 4-lane 128-bit core (`chacha::sse2`); the x86-64 baseline.
    Sse2,
    /// 8-lane 256-bit core (`chacha::avx2`); runtime-detected on x86-64.
    Avx2,
}

impl IsaTier {
    /// The tier's name as accepted by [`FORCE_ISA_ENV`] and reported in
    /// bench output.
    pub fn name(self) -> &'static str {
        match self {
            IsaTier::Portable => "portable",
            IsaTier::Sse2 => "sse2",
            IsaTier::Avx2 => "avx2",
        }
    }
}

impl std::fmt::Display for IsaTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a [`FORCE_ISA_ENV`] override could not be honored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForceIsaError {
    /// The value names no known tier.
    UnknownTier(String),
    /// The named tier is wider than what this CPU / target supports.
    Unavailable {
        /// The tier the override asked for.
        requested: IsaTier,
        /// The widest tier actually available here.
        detected: IsaTier,
    },
}

impl std::fmt::Display for ForceIsaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ForceIsaError::UnknownTier(got) => {
                write!(f, "{FORCE_ISA_ENV}={got:?}: unknown tier (expected portable, sse2 or avx2)")
            }
            ForceIsaError::Unavailable { requested, detected } => write!(
                f,
                "{FORCE_ISA_ENV}={requested}: tier not available on this CPU (widest supported: {detected})"
            ),
        }
    }
}

impl std::error::Error for ForceIsaError {}

/// The widest tier the running CPU supports.
fn detect() -> IsaTier {
    #[cfg(all(target_arch = "x86_64", target_feature = "sse2"))]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            IsaTier::Avx2
        } else {
            IsaTier::Sse2
        }
    }
    #[cfg(not(all(target_arch = "x86_64", target_feature = "sse2")))]
    {
        IsaTier::Portable
    }
}

/// Resolves a forced-tier request against the detected capability: no
/// request selects `detected`; a request at or below it is honored; a
/// wider or unknown request is a typed error. Pure — the cached [`tier`]
/// applies it to [`FORCE_ISA_ENV`] and [`detect`], and tests drive it
/// with every combination directly.
pub fn resolve(forced: Option<&str>, detected: IsaTier) -> Result<IsaTier, ForceIsaError> {
    let Some(name) = forced else {
        return Ok(detected);
    };
    let requested = match name.to_ascii_lowercase().as_str() {
        "portable" => IsaTier::Portable,
        "sse2" => IsaTier::Sse2,
        "avx2" => IsaTier::Avx2,
        _ => return Err(ForceIsaError::UnknownTier(name.to_string())),
    };
    if requested <= detected {
        Ok(requested)
    } else {
        Err(ForceIsaError::Unavailable { requested, detected })
    }
}

fn cached() -> &'static Result<IsaTier, ForceIsaError> {
    static TIER: OnceLock<Result<IsaTier, ForceIsaError>> = OnceLock::new();
    TIER.get_or_init(|| {
        let forced = std::env::var(FORCE_ISA_ENV).ok();
        resolve(forced.as_deref(), detect())
    })
}

/// The active dispatch tier, honoring [`FORCE_ISA_ENV`] — the typed-error
/// form for callers that want to report a bad override themselves (the
/// bench binary fails fast with the [`ForceIsaError`] message).
pub fn try_tier() -> Result<IsaTier, ForceIsaError> {
    cached().clone()
}

/// The active dispatch tier, honoring [`FORCE_ISA_ENV`].
///
/// # Panics
/// Panics if the override names an unknown or unavailable tier: a forced
/// tier exists to pin what runs, so silently falling back would defeat it.
pub fn tier() -> IsaTier {
    match cached() {
        Ok(tier) => *tier,
        Err(err) => panic!("{err}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_override_selects_detected() {
        for detected in [IsaTier::Portable, IsaTier::Sse2, IsaTier::Avx2] {
            assert_eq!(resolve(None, detected), Ok(detected));
        }
    }

    #[test]
    fn forcing_at_or_below_detected_is_honored() {
        assert_eq!(resolve(Some("portable"), IsaTier::Avx2), Ok(IsaTier::Portable));
        assert_eq!(resolve(Some("sse2"), IsaTier::Avx2), Ok(IsaTier::Sse2));
        assert_eq!(resolve(Some("avx2"), IsaTier::Avx2), Ok(IsaTier::Avx2));
        assert_eq!(resolve(Some("portable"), IsaTier::Portable), Ok(IsaTier::Portable));
        // Case-insensitive, matching how users type env vars.
        assert_eq!(resolve(Some("SSE2"), IsaTier::Sse2), Ok(IsaTier::Sse2));
    }

    #[test]
    fn forcing_above_detected_is_a_typed_error() {
        assert_eq!(
            resolve(Some("avx2"), IsaTier::Sse2),
            Err(ForceIsaError::Unavailable { requested: IsaTier::Avx2, detected: IsaTier::Sse2 })
        );
        assert_eq!(
            resolve(Some("sse2"), IsaTier::Portable),
            Err(ForceIsaError::Unavailable {
                requested: IsaTier::Sse2,
                detected: IsaTier::Portable
            })
        );
    }

    #[test]
    fn unknown_tier_is_a_typed_error() {
        assert_eq!(
            resolve(Some("neon"), IsaTier::Avx2),
            Err(ForceIsaError::UnknownTier("neon".to_string()))
        );
        let msg = resolve(Some("avx512"), IsaTier::Avx2).unwrap_err().to_string();
        assert!(msg.contains("DPS_FORCE_ISA"), "error names the env var: {msg}");
    }

    #[test]
    fn unavailable_error_names_both_tiers() {
        let msg = resolve(Some("avx2"), IsaTier::Portable).unwrap_err().to_string();
        assert!(msg.contains("avx2") && msg.contains("portable"), "{msg}");
    }

    /// The process-wide cached tier is consistent: never wider than what
    /// the CPU reports, and stable across calls. (CI sets the override to
    /// valid tiers only, so `try_tier` must succeed here.)
    #[test]
    fn cached_tier_is_stable_and_supported() {
        let tier = try_tier().expect("valid or absent override");
        assert!(tier <= detect());
        assert_eq!(tier, super::tier());
    }
}
