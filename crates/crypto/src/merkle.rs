//! A binary Merkle hash tree over storage cells.
//!
//! The paper's adversary is honest-but-curious: it reads transcripts but
//! serves cells faithfully. A production deployment must also survive an
//! *active* server that corrupts, swaps, or rolls back cells. The standard
//! remedy is a Merkle tree: the client keeps only the 32-byte root; every
//! downloaded cell comes with its `O(log n)` sibling path, which the client
//! verifies before trusting the cell, and every upload updates the root.
//! Combined with per-cell AEAD ([`crate::aead`]) this upgrades any scheme in
//! this workspace from honest-but-curious to active security at
//! `O(log n)` hashes (not blocks!) per access — the blocks-moved overhead
//! that the paper's theorems count is unchanged.
//!
//! Leaves are hashed with a `0x00` domain-separation prefix and interior
//! nodes with `0x01` (the standard second-preimage defence); an odd node at
//! any level is promoted by hashing with an empty right sibling.

use crate::sha256::digest as sha256;

/// A 32-byte node digest.
pub type Digest = [u8; 32];

/// A sibling on the leaf-to-root authentication path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathNode {
    /// The sibling digest.
    pub digest: Digest,
    /// True if the sibling sits to the right of the running hash.
    pub sibling_on_right: bool,
}

/// An authentication path for one leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub leaf: usize,
    /// Leaf-to-root siblings.
    pub path: Vec<PathNode>,
}

fn hash_leaf(data: &[u8]) -> Digest {
    let mut input = Vec::with_capacity(data.len() + 1);
    input.push(0x00);
    input.extend_from_slice(data);
    sha256(&input)
}

fn hash_interior(left: &Digest, right: &Digest) -> Digest {
    let mut input = [0u8; 65];
    input[0] = 0x01;
    input[1..33].copy_from_slice(left);
    input[33..].copy_from_slice(right);
    sha256(&input)
}

/// The digest of an absent right sibling (odd level widths).
fn empty_digest() -> Digest {
    sha256(&[0x02])
}

/// A Merkle tree over `n` cells, stored level by level (level 0 = leaves).
///
/// In deployment the *tree* lives on the untrusted server and only the
/// *root* is trusted client state; [`MerkleTree::verify`] is the pure
/// client-side check that needs nothing but the root.
#[derive(Debug, Clone)]
pub struct MerkleTree {
    /// `levels[0]` = leaf digests; last level has exactly one node.
    levels: Vec<Vec<Digest>>,
}

impl MerkleTree {
    /// Builds the tree over the given cells.
    ///
    /// # Panics
    /// Panics if `cells` is empty.
    pub fn build<C: AsRef<[u8]>>(cells: &[C]) -> Self {
        assert!(!cells.is_empty(), "need at least one cell");
        let mut levels = vec![cells.iter().map(|c| hash_leaf(c.as_ref())).collect::<Vec<_>>()];
        while levels.last().expect("non-empty").len() > 1 {
            let prev = levels.last().expect("non-empty");
            let next: Vec<Digest> = prev
                .chunks(2)
                .map(|pair| match pair {
                    [l, r] => hash_interior(l, r),
                    [l] => hash_interior(l, &empty_digest()),
                    _ => unreachable!("chunks(2)"),
                })
                .collect();
            levels.push(next);
        }
        Self { levels }
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels[0].len()
    }

    /// True if the tree has no leaves (never: `build` requires one).
    pub fn is_empty(&self) -> bool {
        self.levels[0].is_empty()
    }

    /// The root digest — the client's entire trusted state.
    pub fn root(&self) -> Digest {
        *self.levels.last().expect("non-empty").first().expect("root")
    }

    /// Tree height (number of levels above the leaves).
    pub fn height(&self) -> usize {
        self.levels.len() - 1
    }

    /// Produces the authentication path for `leaf`.
    ///
    /// # Panics
    /// Panics if `leaf` is out of range.
    pub fn prove(&self, leaf: usize) -> MerkleProof {
        assert!(leaf < self.len(), "leaf {leaf} out of range");
        let mut path = Vec::with_capacity(self.height());
        let mut index = leaf;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_on_right = index.is_multiple_of(2);
            let sibling_index = if sibling_on_right { index + 1 } else { index - 1 };
            let digest = level.get(sibling_index).copied().unwrap_or_else(empty_digest);
            path.push(PathNode { digest, sibling_on_right });
            index /= 2;
        }
        MerkleProof { leaf, path }
    }

    /// Client-side verification: checks that `cell` at `proof.leaf` is
    /// consistent with the trusted `root`. Pure function of its inputs.
    pub fn verify(root: &Digest, cell: &[u8], proof: &MerkleProof) -> bool {
        let mut acc = hash_leaf(cell);
        let mut index = proof.leaf;
        for node in &proof.path {
            // The path's left/right flags must agree with the leaf index;
            // otherwise a valid-looking path could authenticate a different
            // position (cell-swap attack).
            if node.sibling_on_right != index.is_multiple_of(2) {
                return false;
            }
            acc = if node.sibling_on_right {
                hash_interior(&acc, &node.digest)
            } else {
                hash_interior(&node.digest, &acc)
            };
            index /= 2;
        }
        acc == *root
    }

    /// Replaces leaf `leaf` with the digest of `cell` and recomputes the
    /// path to the root. `O(log n)` hashes.
    ///
    /// # Panics
    /// Panics if `leaf` is out of range.
    pub fn update(&mut self, leaf: usize, cell: &[u8]) {
        assert!(leaf < self.len(), "leaf {leaf} out of range");
        let mut index = leaf;
        self.levels[0][index] = hash_leaf(cell);
        for level in 1..self.levels.len() {
            let child = index & !1;
            let left = self.levels[level - 1][child];
            let right = self.levels[level - 1]
                .get(child + 1)
                .copied()
                .unwrap_or_else(empty_digest);
            index /= 2;
            self.levels[level][index] = hash_interior(&left, &right);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cells(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| vec![i as u8; 8]).collect()
    }

    #[test]
    fn proofs_verify_for_all_leaves() {
        for n in [1usize, 2, 3, 7, 8, 9, 100] {
            let data = cells(n);
            let tree = MerkleTree::build(&data);
            let root = tree.root();
            for (i, cell) in data.iter().enumerate() {
                let proof = tree.prove(i);
                assert!(MerkleTree::verify(&root, cell, &proof), "n = {n}, leaf {i}");
            }
        }
    }

    #[test]
    fn wrong_cell_fails_verification() {
        let data = cells(16);
        let tree = MerkleTree::build(&data);
        let root = tree.root();
        let proof = tree.prove(5);
        assert!(!MerkleTree::verify(&root, &[0xFFu8; 8], &proof));
    }

    #[test]
    fn swapped_cell_fails_verification() {
        // Serving leaf 3's cell with leaf 5's proof (or vice versa) must
        // fail — this is the attack address-binding defends against.
        let data = cells(16);
        let tree = MerkleTree::build(&data);
        let root = tree.root();
        let proof5 = tree.prove(5);
        assert!(!MerkleTree::verify(&root, &data[3], &proof5));
    }

    #[test]
    fn tampered_path_fails_verification() {
        let data = cells(8);
        let tree = MerkleTree::build(&data);
        let root = tree.root();
        let mut proof = tree.prove(2);
        proof.path[1].digest[0] ^= 1;
        assert!(!MerkleTree::verify(&root, &data[2], &proof));
    }

    #[test]
    fn flipped_direction_flag_fails_verification() {
        let data = cells(8);
        let tree = MerkleTree::build(&data);
        let root = tree.root();
        let mut proof = tree.prove(2);
        proof.path[0].sibling_on_right = !proof.path[0].sibling_on_right;
        assert!(!MerkleTree::verify(&root, &data[2], &proof));
    }

    #[test]
    fn update_changes_root_and_reverifies() {
        let data = cells(10);
        let mut tree = MerkleTree::build(&data);
        let old_root = tree.root();
        tree.update(7, b"new cell");
        let new_root = tree.root();
        assert_ne!(old_root, new_root);
        // New value verifies against new root.
        assert!(MerkleTree::verify(&new_root, b"new cell", &tree.prove(7)));
        // Old value still verifies against OLD root (rollback detection:
        // a server replaying the old cell fails against the new root).
        assert!(!MerkleTree::verify(&new_root, &data[7], &tree.prove(7)));
        assert!(MerkleTree::verify(&old_root, &data[7], &{
            let fresh = MerkleTree::build(&data);
            fresh.prove(7)
        }));
    }

    #[test]
    fn update_matches_rebuild() {
        let mut data = cells(13);
        let mut tree = MerkleTree::build(&data);
        for (i, new) in [(0usize, b"aa".as_slice()), (6, b"bb".as_slice()), (12, b"cc".as_slice())]
        {
            data[i] = new.to_vec();
            tree.update(i, new);
            let rebuilt = MerkleTree::build(&data);
            assert_eq!(tree.root(), rebuilt.root(), "after updating leaf {i}");
        }
    }

    #[test]
    fn single_leaf_tree() {
        let tree = MerkleTree::build(&[b"only"]);
        assert_eq!(tree.height(), 0);
        assert!(MerkleTree::verify(&tree.root(), b"only", &tree.prove(0)));
    }

    #[test]
    fn leaf_and_interior_domains_are_separated() {
        // A leaf whose content equals an interior node's input must not
        // collide: hash_leaf and hash_interior use distinct prefixes.
        let a = hash_leaf(b"x");
        let b = hash_leaf(b"y");
        let interior = hash_interior(&a, &b);
        let mut fake_leaf = Vec::new();
        fake_leaf.extend_from_slice(&a);
        fake_leaf.extend_from_slice(&b);
        assert_ne!(hash_leaf(&fake_leaf), interior);
    }

    #[test]
    fn height_grows_logarithmically() {
        assert_eq!(MerkleTree::build(&cells(2)).height(), 1);
        assert_eq!(MerkleTree::build(&cells(8)).height(), 3);
        assert_eq!(MerkleTree::build(&cells(9)).height(), 4);
        assert_eq!(MerkleTree::build(&cells(1024)).height(), 10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn prove_out_of_range_panics() {
        MerkleTree::build(&cells(4)).prove(4);
    }
}
