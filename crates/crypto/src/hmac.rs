//! HMAC-SHA256 (RFC 2104), the PRF instantiation used by the mapping scheme
//! of Section 7. Verified against RFC 4231 test vectors.

use crate::sha256::{self, Sha256, BLOCK_LEN, DIGEST_LEN};

/// A precomputed HMAC-SHA256 key: the inner and outer hash states after
/// absorbing the key pads. Callers that MAC many messages under one key
/// (e.g. the per-cell integrity tags of [`crate::cipher::BlockCipher`])
/// skip the two pad compressions per message that [`hmac_sha256`] pays.
#[derive(Clone)]
pub struct HmacKey {
    inner: Sha256,
    outer: Sha256,
}

impl std::fmt::Debug for HmacKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key-derived state.
        write!(f, "HmacKey(..)")
    }
}

impl HmacKey {
    /// Precomputes the pad states for `key`.
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            key_block[..DIGEST_LEN].copy_from_slice(&sha256::digest(key));
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }

        let mut ipad = [0x36u8; BLOCK_LEN];
        let mut opad = [0x5cu8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] ^= key_block[i];
            opad[i] ^= key_block[i];
        }

        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        Self { inner, outer }
    }

    /// Computes `HMAC-SHA256(key, message)` from the precomputed states.
    pub fn mac(&self, message: &[u8]) -> [u8; DIGEST_LEN] {
        let mut inner = self.inner.clone();
        inner.update(message);
        let inner_digest = inner.finalize();
        let mut outer = self.outer.clone();
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// Computes `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    HmacKey::new(key).mac(message)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: &[u8]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0b; 20];
        assert_eq!(
            hex(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    /// RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    /// RFC 4231 test case 3 (0xaa key, 0xdd data).
    #[test]
    fn rfc4231_case3() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        assert_eq!(
            hex(&hmac_sha256(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    /// RFC 4231 test case 6: key longer than one block is hashed first.
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaa; 131];
        assert_eq!(
            hex(&hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    /// Different keys give unrelated outputs.
    #[test]
    fn key_separation() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }
}
