//! Pseudorandom functions over arbitrary byte-string inputs.
//!
//! Section 7.2 represents the mapping function succinctly as
//! `Π(u) = {F(key1, u), F(key2, u)}` for a PRF `F`. [`HmacPrf`] instantiates
//! `F` as HMAC-SHA256 truncated to 64 bits, with an unbiased reduction into
//! `[0, n)` for bucket selection.

use crate::hmac::{hmac_sha256, HmacKey};

/// A keyed pseudorandom function mapping byte strings to 64-bit outputs.
pub trait Prf {
    /// Evaluates the PRF on `input`.
    fn eval(&self, input: &[u8]) -> u64;

    /// Evaluates the PRF and reduces the output into `[0, n)` without
    /// modulo bias (the bias of a single 64-bit reduction is at most
    /// `n / 2^64`, negligible for every `n` this workspace uses, but we use
    /// the multiply-shift reduction to keep the mapping uniform in
    /// distribution tests).
    fn eval_range(&self, input: &[u8], n: u64) -> u64 {
        assert!(n > 0, "range must be non-empty");
        // Lemire's multiply-shift: floor(x * n / 2^64).
        ((u128::from(self.eval(input)) * u128::from(n)) >> 64) as u64
    }
}

/// HMAC-SHA256-based PRF. The HMAC pad states are precomputed once per
/// key, so each evaluation costs only the message compressions.
#[derive(Clone)]
pub struct HmacPrf {
    key: Vec<u8>,
    mac: HmacKey,
}

impl std::fmt::Debug for HmacPrf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "HmacPrf(..)")
    }
}

impl HmacPrf {
    /// Creates a PRF keyed with `key`.
    pub fn new(key: &[u8]) -> Self {
        Self { key: key.to_vec(), mac: HmacKey::new(key) }
    }

    /// Derives an independent PRF from this one using a domain-separation
    /// label. Used to obtain the two hash functions of two-choice hashing
    /// from a single master key.
    pub fn derive(&self, label: &[u8]) -> Self {
        let mut input = Vec::with_capacity(label.len() + 7);
        input.extend_from_slice(b"derive:");
        input.extend_from_slice(label);
        Self::new(&hmac_sha256(&self.key, &input))
    }
}

impl Prf for HmacPrf {
    fn eval(&self, input: &[u8]) -> u64 {
        let digest = self.mac.mac(input);
        u64::from_le_bytes(digest[..8].try_into().expect("8-byte prefix"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let prf = HmacPrf::new(b"key");
        assert_eq!(prf.eval(b"input"), prf.eval(b"input"));
    }

    #[test]
    fn input_separation() {
        let prf = HmacPrf::new(b"key");
        assert_ne!(prf.eval(b"a"), prf.eval(b"b"));
    }

    #[test]
    fn derived_prfs_are_independent() {
        let master = HmacPrf::new(b"master");
        let f1 = master.derive(b"1");
        let f2 = master.derive(b"2");
        assert_ne!(f1.eval(b"x"), f2.eval(b"x"));
        assert_ne!(f1.eval(b"x"), master.eval(b"x"));
    }

    #[test]
    fn range_is_respected() {
        let prf = HmacPrf::new(b"key");
        for i in 0u64..200 {
            let v = prf.eval_range(&i.to_le_bytes(), 17);
            assert!(v < 17);
        }
    }

    /// Outputs over a range should be roughly uniform: a chi-squared-style
    /// sanity check with loose tolerance.
    #[test]
    fn range_roughly_uniform() {
        let prf = HmacPrf::new(b"uniformity");
        let buckets = 16usize;
        let trials = 16_000u64;
        let mut counts = vec![0u64; buckets];
        for i in 0..trials {
            counts[prf.eval_range(&i.to_le_bytes(), buckets as u64) as usize] += 1;
        }
        let expected = trials as f64 / buckets as f64;
        for (b, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.15, "bucket {b} count {c} deviates {dev:.3} from uniform");
        }
    }
}
