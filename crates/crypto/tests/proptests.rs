//! Property-based tests for the crypto substrate.

use dps_crypto::{BlockCipher, ChaChaRng, Prf};
use proptest::prelude::*;

proptest! {
    // The PRP-bijection and Merkle properties walk whole domains per case;
    // 64 cases keeps this suite CI-friendly without weakening coverage of
    // the short-input edge cases (empty, single-byte, block-boundary).
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encryption round-trips for arbitrary plaintexts.
    #[test]
    fn cipher_round_trip(plaintext in proptest::collection::vec(any::<u8>(), 0..512), seed in any::<u64>()) {
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let cipher = BlockCipher::generate(&mut rng);
        let ct = cipher.encrypt(&plaintext, &mut rng);
        prop_assert_eq!(cipher.decrypt(&ct).unwrap(), plaintext);
    }

    /// The in-place / into-scratch crypto paths agree exactly with the
    /// owning paths: `encrypt_into` output decrypts via `decrypt`, owned
    /// `encrypt` output decrypts via both `decrypt_into` and
    /// `decrypt_in_place`, and a reused scratch buffer never leaks state
    /// between calls.
    #[test]
    fn in_place_crypto_matches_owning(
        pt_a in proptest::collection::vec(any::<u8>(), 0..300),
        pt_b in proptest::collection::vec(any::<u8>(), 0..300),
        seed in any::<u64>(),
    ) {
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let cipher = BlockCipher::generate(&mut rng);
        let mut ct_scratch = Vec::new();
        let mut pt_scratch = vec![0xEEu8; 64]; // stale contents must be cleared
        for pt in [&pt_a, &pt_b, &pt_a] {
            // encrypt_into -> decrypt
            cipher.encrypt_into(pt, &mut ct_scratch, &mut rng);
            prop_assert_eq!(
                &cipher.decrypt(&dps_crypto::Ciphertext(ct_scratch.clone())).unwrap(),
                pt
            );
            // encrypt_into -> decrypt_into (scratch reuse)
            cipher.decrypt_into(&ct_scratch.clone(), &mut pt_scratch).unwrap();
            prop_assert_eq!(&pt_scratch, pt);
            // encrypt (owned) -> decrypt_in_place
            let mut buf = cipher.encrypt(pt, &mut rng).0;
            cipher.decrypt_in_place(&mut buf).unwrap();
            prop_assert_eq!(&buf, pt);
        }
    }

    /// `decrypt_in_place` detects corruption and leaves the buffer intact
    /// on failure.
    #[test]
    fn decrypt_in_place_rejects_corruption(
        len in 0usize..128,
        pos_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let cipher = BlockCipher::generate(&mut rng);
        let mut buf = cipher.encrypt(&vec![3u8; len], &mut rng).0;
        let pos = ((buf.len() - 1) as f64 * pos_frac) as usize;
        buf[pos] ^= 1;
        let before = buf.clone();
        prop_assert!(cipher.decrypt_in_place(&mut buf).is_err());
        prop_assert_eq!(buf, before);
    }

    /// AEAD `seal_into` / `open_in_place` agree with the owning paths.
    #[test]
    fn aead_in_place_matches_owning(
        plaintext in proptest::collection::vec(any::<u8>(), 0..200),
        aad in proptest::collection::vec(any::<u8>(), 0..32),
        seed in any::<u64>(),
    ) {
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let cipher = dps_crypto::AeadCipher::generate(&mut rng);
        let mut sealed_scratch = vec![0xAAu8; 8];
        cipher.seal_into(&aad, &plaintext, &mut sealed_scratch, &mut rng);
        prop_assert_eq!(
            cipher.open(&aad, &dps_crypto::Sealed(sealed_scratch.clone())).unwrap(),
            plaintext.clone()
        );
        let mut buf = cipher.seal(&aad, &plaintext, &mut rng).0;
        cipher.open_in_place(&aad, &mut buf).unwrap();
        prop_assert_eq!(buf, plaintext);
    }

    /// Ciphertext length depends only on plaintext length.
    #[test]
    fn ciphertext_length_is_deterministic(len in 0usize..300, seed in any::<u64>()) {
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let cipher = BlockCipher::generate(&mut rng);
        let a = cipher.encrypt(&vec![0u8; len], &mut rng);
        let b = cipher.encrypt(&vec![0xFF; len], &mut rng);
        prop_assert_eq!(a.len(), b.len());
    }

    /// Any single-byte corruption is detected.
    #[test]
    fn corruption_detected(len in 1usize..128, pos_frac in 0.0f64..1.0, seed in any::<u64>()) {
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let cipher = BlockCipher::generate(&mut rng);
        let mut ct = cipher.encrypt(&vec![7u8; len], &mut rng);
        let pos = ((ct.0.len() - 1) as f64 * pos_frac) as usize;
        ct.0[pos] ^= 1;
        prop_assert!(cipher.decrypt(&ct).is_err());
    }

    /// SHA-256 incremental hashing is split-invariant.
    #[test]
    fn sha256_split_invariant(data in proptest::collection::vec(any::<u8>(), 0..400), split_frac in 0.0f64..1.0) {
        let split = (data.len() as f64 * split_frac) as usize;
        let mut h = dps_crypto::sha256::Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), dps_crypto::sha256::digest(&data));
    }

    /// gen_range stays in range and gen_index covers [0, n).
    #[test]
    fn rng_range_bounds(n in 1u64..=u64::MAX, seed in any::<u64>()) {
        let mut rng = ChaChaRng::seed_from_u64(seed);
        for _ in 0..8 {
            prop_assert!(rng.gen_range(n) < n);
        }
    }

    /// sample_distinct returns exactly k distinct in-range values.
    #[test]
    fn sample_distinct_invariants(k in 0usize..64, extra in 0usize..64, seed in any::<u64>()) {
        let n = k + extra.max(1);
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let sample = rng.sample_distinct(k, n);
        prop_assert_eq!(sample.len(), k);
        let set: std::collections::HashSet<_> = sample.iter().collect();
        prop_assert_eq!(set.len(), k);
        prop_assert!(sample.iter().all(|&v| v < n));
    }

    /// Shuffle preserves the multiset.
    #[test]
    fn shuffle_is_permutation(mut v in proptest::collection::vec(any::<u16>(), 0..80), seed in any::<u64>()) {
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let mut sorted_before = v.clone();
        sorted_before.sort_unstable();
        rng.shuffle(&mut v);
        v.sort_unstable();
        prop_assert_eq!(v, sorted_before);
    }

    /// PRF range reduction is in range for arbitrary inputs.
    #[test]
    fn prf_range(input in proptest::collection::vec(any::<u8>(), 0..64), n in 1u64..1_000_000) {
        let prf = dps_crypto::HmacPrf::new(b"prop-key");
        prop_assert!(prf.eval_range(&input, n) < n);
    }

    /// AEAD round-trips for arbitrary plaintexts and associated data.
    #[test]
    fn aead_round_trip(
        plaintext in proptest::collection::vec(any::<u8>(), 0..256),
        aad in proptest::collection::vec(any::<u8>(), 0..48),
        seed in any::<u64>(),
    ) {
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let cipher = dps_crypto::AeadCipher::generate(&mut rng);
        let sealed = cipher.seal(&aad, &plaintext, &mut rng);
        prop_assert_eq!(cipher.open(&aad, &sealed).unwrap(), plaintext);
    }

    /// AEAD rejects any single-byte corruption of ciphertext or AAD.
    #[test]
    fn aead_rejects_corruption(
        len in 1usize..96,
        pos_frac in 0.0f64..1.0,
        flip_aad in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let cipher = dps_crypto::AeadCipher::generate(&mut rng);
        let mut aad = vec![1u8, 2, 3];
        let mut sealed = cipher.seal(&aad, &vec![9u8; len], &mut rng);
        if flip_aad {
            aad[1] ^= 1;
        } else {
            let pos = ((sealed.0.len() - 1) as f64 * pos_frac) as usize;
            sealed.0[pos] ^= 1;
        }
        prop_assert!(cipher.open(&aad, &sealed).is_err());
    }

    /// The wide multi-block keystream (8, then 4, consecutive counters per
    /// pass) is byte-identical to a scalar per-block reference for lengths
    /// spanning sub-block tails through several 512-byte stripes. Run under
    /// each `DPS_FORCE_ISA` tier (as CI does), this pins the avx2, sse2 and
    /// portable cores byte-identical to one another via the shared scalar
    /// reference.
    #[test]
    fn wide_keystream_matches_scalar_blocks(
        len in 0usize..=1024,
        counter in any::<u32>(),
        key in proptest::array::uniform32(any::<u8>()),
        nonce_seed in any::<u64>(),
    ) {
        use dps_crypto::chacha;
        let mut nonce = [0u8; 12];
        ChaChaRng::seed_from_u64(nonce_seed).fill_bytes(&mut nonce);
        let original: Vec<u8> = (0..len).map(|i| (i * 29 % 251) as u8).collect();
        let mut data = original.clone();
        chacha::xor_keystream(&key, counter, &nonce, &mut data);
        let mut expected = original;
        for (j, chunk) in expected.chunks_mut(chacha::BLOCK_LEN).enumerate() {
            let ks = chacha::block(&key, counter.wrapping_add(j as u32), &nonce);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
        prop_assert_eq!(data, expected);
    }

    /// The strided multi-cell keystream entry point (up to 8 different
    /// nonces per pass) equals a per-cell `xor_keystream` loop for every
    /// cell-count remainder class of both group widths (1..=8 and beyond),
    /// sub-block cell lengths, and misaligned in-slot byte offsets.
    #[test]
    fn wide_batch_strided_matches_per_cell(
        cells in 0usize..18,
        len in 0usize..300,
        offset in 0usize..8,
        pad in 0usize..20,
        key in proptest::array::uniform32(any::<u8>()),
        seed in any::<u64>(),
    ) {
        use dps_crypto::chacha;
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let stride = offset + len + pad;
        let nonces = rng.draw_nonces(cells);
        let original: Vec<u8> = (0..cells * stride).map(|i| (i * 31 % 251) as u8).collect();
        let mut batch = original.clone();
        chacha::xor_keystream_batch_strided(&key, 1, &nonces, &mut batch, stride, offset, len);
        let mut expected = original;
        for (i, nonce) in nonces.iter().enumerate() {
            let start = i * stride + offset;
            chacha::xor_keystream(&key, 1, nonce, &mut expected[start..start + len]);
        }
        prop_assert_eq!(batch, expected);
    }

    /// `poly1305_batch` (8, then 4, tags' field arithmetic interleaved)
    /// equals a scalar per-message loop for message lengths 0..=1024 and
    /// every cell count remainder class of both group widths.
    #[test]
    fn poly1305_batch_matches_scalar(
        cells in 0usize..18,
        len in 0usize..=1024,
        seed in any::<u64>(),
    ) {
        use dps_crypto::poly1305::{poly1305, poly1305_batch, TAG_LEN};
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let keys: Vec<[u8; 32]> = (0..cells)
            .map(|_| {
                let mut k = [0u8; 32];
                rng.fill_bytes(&mut k);
                k
            })
            .collect();
        let flat: Vec<u8> = (0..cells * len).map(|i| (i * 13 % 251) as u8).collect();
        let mut tags = vec![[0u8; TAG_LEN]; cells];
        poly1305_batch(&keys, &flat, len, len, &mut tags);
        for (i, key) in keys.iter().enumerate() {
            prop_assert_eq!(tags[i], poly1305(key, &flat[i * len..(i + 1) * len]));
        }
    }

    /// The batch cipher entry points are byte-identical to sequential
    /// per-cell loops over the same pre-drawn nonces, and round-trip.
    #[test]
    fn cipher_batch_matches_sequential(
        cells in 0usize..18,
        pt_stride in 0usize..200,
        seed in any::<u64>(),
    ) {
        use dps_crypto::CIPHERTEXT_OVERHEAD;
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let cipher = BlockCipher::generate(&mut rng);
        let plaintexts: Vec<u8> = (0..cells * pt_stride).map(|i| (i * 7 % 251) as u8).collect();
        let nonces = rng.draw_nonces(cells);
        let ct_stride = pt_stride + CIPHERTEXT_OVERHEAD;
        let mut batch = vec![0u8; cells * ct_stride];
        cipher.encrypt_batch_with_nonces(&nonces, &plaintexts, &mut batch);
        let mut seq = vec![0u8; cells * ct_stride];
        for i in 0..cells {
            cipher.encrypt_with_nonce_into(
                &nonces[i],
                &plaintexts[i * pt_stride..(i + 1) * pt_stride],
                &mut seq[i * ct_stride..(i + 1) * ct_stride],
            );
        }
        prop_assert_eq!(&batch, &seq);
        let mut back = vec![0u8; cells * pt_stride];
        cipher.decrypt_batch_to_slices(&batch, cells, &mut back).unwrap();
        prop_assert_eq!(back, plaintexts);
    }

    /// The batch AEAD entry points are byte-identical to sequential
    /// per-cell seals over the same nonces and AADs, and open correctly.
    #[test]
    fn aead_batch_matches_sequential(
        cells in 0usize..18,
        pt_stride in 0usize..200,
        seed in any::<u64>(),
    ) {
        use dps_crypto::aead::address_aad;
        use dps_crypto::AEAD_OVERHEAD;
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let cipher = dps_crypto::AeadCipher::generate(&mut rng);
        let plaintexts: Vec<u8> = (0..cells * pt_stride).map(|i| (i * 11 % 251) as u8).collect();
        let nonces = rng.draw_nonces(cells);
        let aads: Vec<[u8; 16]> = (0..cells).map(|i| address_aad(i, 1)).collect();
        let ct_stride = pt_stride + AEAD_OVERHEAD;
        let mut batch = vec![0u8; cells * ct_stride];
        cipher.seal_batch_with_nonces(&nonces, &aads, &plaintexts, &mut batch);
        let mut seq = vec![0u8; cells * ct_stride];
        for i in 0..cells {
            cipher.seal_with_nonce_into(
                &nonces[i],
                &aads[i],
                &plaintexts[i * pt_stride..(i + 1) * pt_stride],
                &mut seq[i * ct_stride..(i + 1) * ct_stride],
            );
        }
        prop_assert_eq!(&batch, &seq);
        let mut back = vec![0u8; cells * pt_stride];
        cipher.open_batch_to_slices(&aads, &batch, &mut back).unwrap();
        prop_assert_eq!(back, plaintexts);
    }

    /// Poly1305 incremental absorption is split-invariant.
    #[test]
    fn poly1305_split_invariant(
        data in proptest::collection::vec(any::<u8>(), 0..200),
        split_frac in 0.0f64..1.0,
        key in proptest::array::uniform32(any::<u8>()),
    ) {
        let split = (data.len() as f64 * split_frac) as usize;
        let mut p = dps_crypto::poly1305::Poly1305::new(&key);
        p.update(&data[..split]);
        p.update(&data[split..]);
        prop_assert_eq!(p.finalize(), dps_crypto::poly1305::poly1305(&key, &data));
    }

    /// The small-domain PRP is a bijection on [0, m) and invertible.
    #[test]
    fn prp_bijection(m in 1u64..2048, tweak in any::<u64>()) {
        let prp = dps_crypto::SmallDomainPrp::new(b"prop", tweak, m);
        let mut seen = vec![false; m as usize];
        for x in 0..m {
            let y = prp.permute(x);
            prop_assert!(y < m);
            prop_assert!(!seen[y as usize], "duplicate image {}", y);
            seen[y as usize] = true;
            prop_assert_eq!(prp.invert(y), x);
        }
    }

    /// Merkle proofs verify for every leaf, and any leaf substitution or
    /// wrong-position serve fails.
    #[test]
    fn merkle_soundness(
        cells in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..24), 1..40),
        pick_frac in 0.0f64..1.0,
    ) {
        use dps_crypto::merkle::MerkleTree;
        let tree = MerkleTree::build(&cells);
        let root = tree.root();
        let i = ((cells.len() - 1) as f64 * pick_frac) as usize;
        let proof = tree.prove(i);
        prop_assert!(MerkleTree::verify(&root, &cells[i], &proof));
        // Substituted content fails (unless identical content).
        let mut other = cells[i].clone();
        other.push(0xA5);
        prop_assert!(!MerkleTree::verify(&root, &other, &proof));
        // Serving a different leaf's content under this proof fails unless
        // the cells are byte-identical.
        let j = (i + 1) % cells.len();
        if cells[j] != cells[i] {
            prop_assert!(!MerkleTree::verify(&root, &cells[j], &proof));
        }
    }

    /// Merkle incremental update equals a full rebuild.
    #[test]
    fn merkle_update_matches_rebuild(
        mut cells in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..16), 1..32),
        pick_frac in 0.0f64..1.0,
        new_cell in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        use dps_crypto::merkle::MerkleTree;
        let mut tree = MerkleTree::build(&cells);
        let i = ((cells.len() - 1) as f64 * pick_frac) as usize;
        cells[i] = new_cell.clone();
        tree.update(i, &new_cell);
        prop_assert_eq!(tree.root(), MerkleTree::build(&cells).root());
    }
}
