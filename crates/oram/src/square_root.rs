//! Square-root ORAM (Goldreich, STOC 1987) — the classic `O(√n)` baseline.
//!
//! Server layout: `n` real blocks plus `s = ⌈√n⌉` dummies live in a region
//! permuted by a keyed small-domain PRP ([`dps_crypto::SmallDomainPrp`]),
//! followed by `s` *shelter* cells. A query scans the entire shelter
//! (`s` downloads), then touches exactly one permuted cell — the real
//! block's permuted address if it was not sheltered, or the next unused
//! dummy if it was — and appends the (re-encrypted) record to the next
//! shelter slot. After `s` queries the epoch ends and everything is
//! reshuffled under a fresh permutation.
//!
//! Amortized cost per query is `Θ(√n)` blocks: `s + 2` moved per query plus
//! a `2·(n + 2s)`-block shuffle every `s` queries. This sits strictly
//! between the paper's DP-RAM (`O(1)`, `ε = Θ(log n)`) and Path ORAM
//! (`Θ(log n)` with full obliviousness), giving the comparison experiments
//! a third point on the privacy/overhead curve.
//!
//! **Shuffle simulation note.** The epoch-end reshuffle here downloads all
//! cells, permutes client-side, and re-uploads. A deployment with `O(√n)`
//! client memory would run an oblivious shuffle (e.g. the square-root or
//! Melbourne shuffle \[43\]) with the same `Θ(n)`-block traffic shape; we
//! simulate that traffic without reproducing the multi-pass structure,
//! which only affects constants, not the `Θ(√n)` amortized overhead that
//! the comparison experiments measure.

use std::collections::HashMap;

use dps_crypto::{BlockCipher, ChaChaRng, SmallDomainPrp};
use dps_server::{SimServer, Storage};

use crate::path_oram::OramError;
use crate::slots::{decode_bucket, encode_bucket, encode_bucket_into, Slot};

/// A square-root ORAM client bound to a simulated server.
#[derive(Debug)]
pub struct SquareRootOram<S: Storage = SimServer> {
    n: usize,
    /// Shelter size `s = ⌈√n⌉` (also the dummy count and epoch length).
    shelter_size: usize,
    block_size: usize,
    cipher: BlockCipher,
    prp_key: [u8; 32],
    epoch: u64,
    prp: SmallDomainPrp,
    /// Queries answered in the current epoch (= next shelter slot).
    epoch_queries: usize,
    /// Dummies consumed in the current epoch.
    used_dummies: usize,
    server: S,
    /// Reusable scratch buffers for the zero-copy query path.
    shelter_scratch: Vec<usize>,
    pt_scratch: Vec<u8>,
    bucket_scratch: Vec<u8>,
    enc_cell: Vec<u8>,
    /// Authoritative plaintext contents are re-derived at shuffle time; the
    /// client holds only counters and keys between queries.
    _private: (),
}

impl<S: Storage> SquareRootOram<S> {
    /// Builds the ORAM over `blocks`: permutes `n` real + `s` dummy cells
    /// under a fresh PRP, appends `s` empty shelter cells, and uploads the
    /// encrypted layout.
    ///
    /// # Panics
    /// Panics if `blocks` is empty or block sizes are not uniform.
    pub fn setup(blocks: &[Vec<u8>], mut server: S, rng: &mut ChaChaRng) -> Self {
        assert!(!blocks.is_empty(), "need at least one block");
        let n = blocks.len();
        let block_size = blocks[0].len();
        for b in blocks {
            assert_eq!(b.len(), block_size, "block size mismatch");
        }
        let shelter_size = (n as f64).sqrt().ceil() as usize;

        let cipher = BlockCipher::generate(rng);
        let mut prp_key = [0u8; 32];
        rng.fill_bytes(&mut prp_key);
        let prp = SmallDomainPrp::new(&prp_key, 0, (n + shelter_size) as u64);

        let mut cells = vec![Vec::new(); n + 2 * shelter_size];
        for (i, block) in blocks.iter().enumerate() {
            let addr = prp.permute(i as u64) as usize;
            let plain =
                encode_bucket(&[Slot { id: i as u64, payload: block.clone() }], 1, block_size);
            cells[addr] = cipher.encrypt(&plain, rng).0;
        }
        // Dummies and shelter slots are encrypted empty cells.
        let empty = encode_bucket(&[], 1, block_size);
        for cell in cells.iter_mut().filter(|c| c.is_empty()) {
            *cell = cipher.encrypt(&empty, rng).0;
        }
        server.init(cells);

        Self {
            n,
            shelter_size,
            block_size,
            cipher,
            prp_key,
            epoch: 0,
            prp,
            epoch_queries: 0,
            used_dummies: 0,
            server,
            shelter_scratch: Vec::new(),
            pt_scratch: Vec::new(),
            bucket_scratch: Vec::new(),
            enc_cell: Vec::new(),
            _private: (),
        }
    }

    /// Number of logical blocks.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the ORAM stores no blocks (never the case after setup).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Shelter size `s` (= dummies = epoch length).
    pub fn shelter_size(&self) -> usize {
        self.shelter_size
    }

    /// Block payload size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Amortized blocks moved per query:
    /// `(s + 2) + 2·(n + 2s)/s = Θ(√n)`.
    pub fn amortized_blocks_per_query(&self) -> f64 {
        let s = self.shelter_size as f64;
        let total = (self.n + 2 * self.shelter_size) as f64;
        (s + 2.0) + 2.0 * total / s
    }

    /// Server cost counters.
    pub fn server_stats(&self) -> dps_server::CostStats {
        self.server.stats()
    }

    /// Mutable access to the underlying server (transcript control).
    pub fn server_mut(&mut self) -> &mut S {
        &mut self.server
    }

    fn shelter_addr(&self, slot: usize) -> usize {
        self.n + self.shelter_size + slot
    }

    /// Reads block `index`.
    pub fn read(&mut self, index: usize, rng: &mut ChaChaRng) -> Result<Vec<u8>, OramError> {
        self.access(index, None, rng)
    }

    /// Overwrites block `index` with `value`, returning the old value.
    pub fn write(
        &mut self,
        index: usize,
        value: Vec<u8>,
        rng: &mut ChaChaRng,
    ) -> Result<Vec<u8>, OramError> {
        if value.len() != self.block_size {
            return Err(OramError::BadBlockSize { got: value.len(), expected: self.block_size });
        }
        self.access(index, Some(value), rng)
    }

    fn access(
        &mut self,
        index: usize,
        new_value: Option<Vec<u8>>,
        rng: &mut ChaChaRng,
    ) -> Result<Vec<u8>, OramError> {
        if index >= self.n {
            return Err(OramError::IndexOutOfRange { index, n: self.n });
        }

        // Round trip 1: scan the whole shelter. Later slots are fresher, so
        // a plain insert (which overwrites) yields the newest version. The
        // zero-copy read decrypts each borrowed shelter cell through the
        // reusable plaintext scratch.
        self.shelter_scratch.clear();
        for s in 0..self.epoch_queries {
            self.shelter_scratch.push(self.shelter_addr(s));
        }
        let mut sheltered: HashMap<u64, Vec<u8>> = HashMap::new();
        if !self.shelter_scratch.is_empty() {
            let cipher = &self.cipher;
            let pt = &mut self.pt_scratch;
            let block_size = self.block_size;
            let mut failure: Option<String> = None;
            self.server
                .read_batch_with(&self.shelter_scratch, |_, cell| {
                    if let Err(e) = cipher.decrypt_into(cell, pt) {
                        failure.get_or_insert(e.to_string());
                        return;
                    }
                    match decode_bucket(pt, 1, block_size) {
                        Ok(slots) => {
                            for slot in slots {
                                sheltered.insert(slot.id, slot.payload);
                            }
                        }
                        Err(e) => {
                            failure.get_or_insert(e.to_string());
                        }
                    }
                })
                .map_err(|e| OramError::Storage(e.to_string()))?;
            if let Some(e) = failure {
                return Err(OramError::Storage(e));
            }
        }

        // Round trip 2: one permuted cell — the real block or a dummy.
        let in_shelter = sheltered.contains_key(&(index as u64));
        let target = if in_shelter {
            let dummy = self.n + self.used_dummies;
            self.used_dummies += 1;
            self.prp.permute(dummy as u64) as usize
        } else {
            self.prp.permute(index as u64) as usize
        };
        let pt = &mut self.pt_scratch;
        pt.clear();
        self.server
            .read_batch_with(&[target], |_, cell| pt.extend_from_slice(cell))
            .map_err(|e| OramError::Storage(e.to_string()))?;
        self.cipher
            .decrypt_in_place(&mut self.pt_scratch)
            .map_err(|e| OramError::Storage(e.to_string()))?;
        let main_slots = decode_bucket(&self.pt_scratch, 1, self.block_size)
            .map_err(|e| OramError::Storage(e.to_string()))?;

        let current = if in_shelter {
            sheltered
                .get(&(index as u64))
                .cloned()
                .expect("checked contains_key above")
        } else {
            main_slots
                .into_iter()
                .find(|s| s.id == index as u64)
                .map(|s| s.payload)
                .ok_or_else(|| OramError::Storage(format!("block {index} missing from cell")))?
        };
        let updated = new_value.unwrap_or_else(|| current.clone());

        // Round trip 3: append to the next shelter slot (encode + encrypt
        // through reusable scratch, borrowed upload).
        encode_bucket_into(
            &[Slot { id: index as u64, payload: updated }],
            1,
            self.block_size,
            &mut self.bucket_scratch,
        );
        self.cipher
            .encrypt_into(&self.bucket_scratch, &mut self.enc_cell, rng);
        let shelter_slot = self.shelter_addr(self.epoch_queries);
        self.server
            .write_from(shelter_slot, &self.enc_cell)
            .map_err(|e| OramError::Storage(e.to_string()))?;
        self.epoch_queries += 1;

        if self.epoch_queries == self.shelter_size {
            self.reshuffle(rng)?;
        }
        Ok(current)
    }

    /// Epoch-end reshuffle: merge the shelter into main storage and
    /// re-permute everything under a fresh PRP tweak.
    fn reshuffle(&mut self, rng: &mut ChaChaRng) -> Result<(), OramError> {
        let total = self.n + 2 * self.shelter_size;
        let all: Vec<usize> = (0..total).collect();

        // Rebuild plaintext contents: permuted region first, then shelter
        // (in slot order, so fresher shelter versions win). The zero-copy
        // scan decrypts each borrowed cell through the plaintext scratch.
        let mut contents: Vec<Option<Vec<u8>>> = vec![None; self.n];
        {
            let cipher = &self.cipher;
            let pt = &mut self.pt_scratch;
            let (n, shelter_size, block_size) = (self.n, self.shelter_size, self.block_size);
            let mut failure: Option<String> = None;
            self.server
                .read_batch_with(&all, |addr, cell| {
                    if let Err(e) = cipher.decrypt_into(cell, pt) {
                        failure.get_or_insert(e.to_string());
                        return;
                    }
                    match decode_bucket(pt, 1, block_size) {
                        Ok(slots) => {
                            for slot in slots {
                                let id = slot.id as usize;
                                if id < n {
                                    if addr < n + shelter_size {
                                        // Main region: only fill if nothing
                                        // fresher known.
                                        contents[id].get_or_insert(slot.payload);
                                    } else {
                                        // Shelter: always fresher than main;
                                        // later slots are fresher than
                                        // earlier ones.
                                        contents[id] = Some(slot.payload);
                                    }
                                }
                            }
                        }
                        Err(e) => {
                            failure.get_or_insert(e.to_string());
                        }
                    }
                })
                .map_err(|e| OramError::Storage(e.to_string()))?;
            if let Some(e) = failure {
                return Err(OramError::Storage(e));
            }
        }
        // Shelter slots override main-region versions; ensure shelter pass
        // ran after the main pass by re-reading shelter in slot order.
        // (The loop above visits addresses in increasing order, so shelter
        // slots — the highest addresses — are already processed last.)

        self.epoch += 1;
        self.prp =
            SmallDomainPrp::new(&self.prp_key, self.epoch, (self.n + self.shelter_size) as u64);

        let mut writes = Vec::with_capacity(total);
        let empty = encode_bucket(&[], 1, self.block_size);
        for (i, slot) in contents.iter_mut().enumerate() {
            let payload = slot
                .take()
                .ok_or_else(|| OramError::Storage(format!("block {i} lost in shuffle")))?;
            let plain = encode_bucket(&[Slot { id: i as u64, payload }], 1, self.block_size);
            let addr = self.prp.permute(i as u64) as usize;
            writes.push((addr, self.cipher.encrypt(&plain, rng).0));
        }
        for dummy in self.n..self.n + self.shelter_size {
            let addr = self.prp.permute(dummy as u64) as usize;
            writes.push((addr, self.cipher.encrypt(&empty, rng).0));
        }
        for slot in 0..self.shelter_size {
            writes.push((self.shelter_addr(slot), self.cipher.encrypt(&empty, rng).0));
        }
        self.server
            .write_batch(writes)
            .map_err(|e| OramError::Storage(e.to_string()))?;

        self.epoch_queries = 0;
        self.used_dummies = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: usize, seed: u64) -> (SquareRootOram, ChaChaRng) {
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let blocks: Vec<Vec<u8>> = (0..n).map(|i| vec![(i % 251) as u8; 16]).collect();
        let oram = SquareRootOram::setup(&blocks, SimServer::new(), &mut rng);
        (oram, rng)
    }

    #[test]
    fn read_returns_initial_contents() {
        let (mut oram, mut rng) = build(64, 1);
        for i in [0usize, 13, 63] {
            assert_eq!(oram.read(i, &mut rng).unwrap(), vec![(i % 251) as u8; 16]);
        }
    }

    #[test]
    fn write_then_read_same_epoch() {
        let (mut oram, mut rng) = build(64, 2);
        oram.write(7, vec![0xAB; 16], &mut rng).unwrap();
        assert_eq!(oram.read(7, &mut rng).unwrap(), vec![0xAB; 16]);
    }

    #[test]
    fn writes_survive_reshuffle() {
        let (mut oram, mut rng) = build(16, 3); // s = 4: reshuffles every 4 queries
        oram.write(3, vec![0xCD; 16], &mut rng).unwrap();
        for _ in 0..10 {
            oram.read(0, &mut rng).unwrap(); // force several epochs
        }
        assert_eq!(oram.read(3, &mut rng).unwrap(), vec![0xCD; 16]);
    }

    #[test]
    fn random_workload_matches_reference() {
        let (mut oram, mut rng) = build(30, 4);
        let mut reference: Vec<Vec<u8>> = (0..30).map(|i| vec![(i % 251) as u8; 16]).collect();
        for step in 0..600 {
            let i = rng.gen_index(30);
            if rng.gen_bool(0.4) {
                let v = vec![(step % 256) as u8; 16];
                oram.write(i, v.clone(), &mut rng).unwrap();
                reference[i] = v;
            } else {
                assert_eq!(oram.read(i, &mut rng).unwrap(), reference[i], "step {step}");
            }
        }
    }

    #[test]
    fn repeated_same_index_uses_dummies() {
        // Querying the same block repeatedly within an epoch must succeed
        // (each repeat consumes one dummy).
        let (mut oram, mut rng) = build(100, 5); // s = 10
        for _ in 0..9 {
            assert_eq!(oram.read(42, &mut rng).unwrap(), vec![42u8; 16]);
        }
    }

    #[test]
    fn amortized_cost_is_sqrt_n() {
        let (mut oram, mut rng) = build(256, 6); // s = 16
        let queries = 256; // 16 full epochs
        let before = oram.server_stats();
        for q in 0..queries {
            oram.read(q % 256, &mut rng).unwrap();
        }
        let diff = oram.server_stats().since(&before);
        let measured = (diff.downloads + diff.uploads) as f64 / queries as f64;
        let predicted = oram.amortized_blocks_per_query();
        assert!(
            (measured - predicted).abs() / predicted < 0.2,
            "measured {measured:.1} vs predicted {predicted:.1}"
        );
        // Θ(√n): for n = 256 the amortized cost is far below n and far
        // above a constant.
        assert!(measured > 16.0 && measured < 96.0, "not Θ(√n): {measured}");
    }

    /// The access pattern hides *which* block is queried: within an epoch,
    /// every query touches (a) the public shelter prefix and (b) one
    /// never-before-touched permuted cell. We check property (b): the
    /// permuted-region cells touched across an epoch are distinct,
    /// regardless of the query sequence.
    #[test]
    fn permuted_touches_are_distinct_within_epoch() {
        use dps_server::AccessEvent;
        let n = 64; // s = 8
        let (mut oram, mut rng) = build(n, 7);
        oram.server_mut().start_recording();
        for _ in 0..8 {
            oram.read(5, &mut rng).unwrap(); // worst case: same block
        }
        let t = oram.server_mut().take_transcript();
        let mut permuted_touches = Vec::new();
        for batch in t.batches() {
            for ev in batch {
                if let AccessEvent::Download(a) = ev {
                    if *a < n + oram.shelter_size() {
                        permuted_touches.push(*a);
                    }
                }
            }
        }
        // Drop the epoch-end shuffle's full scan (it downloads everything).
        let per_query: Vec<usize> = permuted_touches
            .iter()
            .copied()
            .take(8) // one permuted touch per query before the shuffle
            .collect();
        let mut dedup = per_query.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), per_query.len(), "repeated permuted cell leaks");
    }

    #[test]
    fn out_of_range_and_bad_size_rejected() {
        let (mut oram, mut rng) = build(9, 8);
        assert!(matches!(
            oram.read(9, &mut rng),
            Err(OramError::IndexOutOfRange { index: 9, n: 9 })
        ));
        assert!(matches!(
            oram.write(0, vec![0u8; 3], &mut rng),
            Err(OramError::BadBlockSize { got: 3, expected: 16 })
        ));
    }

    #[test]
    fn single_block_database() {
        let (mut oram, mut rng) = build(1, 9);
        assert_eq!(oram.read(0, &mut rng).unwrap(), vec![0u8; 16]);
        oram.write(0, vec![1u8; 16], &mut rng).unwrap();
        assert_eq!(oram.read(0, &mut rng).unwrap(), vec![1u8; 16]);
    }

    #[test]
    fn server_storage_is_n_plus_2_sqrt_n() {
        let (oram, _) = build(100, 10);
        assert_eq!(oram.server_stats(), dps_server::CostStats::default());
        assert_eq!(oram.shelter_size(), 10);
    }
}
