//! An ORAM-backed key-value store: the baseline DP-KVS is compared against.
//!
//! The paper says its `O(log log n)` DP-KVS is "exponentially better than
//! the best oblivious key-value storage schemes based on ORAMs". This
//! module is that competitor: keys are mapped to Path-ORAM indices through a
//! client-side directory, and every operation (hit *or* miss) performs
//! exactly one ORAM access so the server learns nothing about keys or hits.
//!
//! Note the directory is held client-side; a deployment with a small client
//! would push it into recursive ORAMs and get strictly worse — so this
//! baseline is *charitable* to ORAM, which only strengthens the measured
//! separation.

use dps_crypto::ChaChaRng;
use dps_server::{SimServer, Storage};

use crate::path_oram::{OramError, PathOram, PathOramConfig};

/// An oblivious KVS built on Path ORAM.
#[derive(Debug)]
pub struct OramKvs<S: Storage = SimServer> {
    oram: PathOram<S>,
    directory: std::collections::HashMap<u64, usize>,
    free: Vec<usize>,
    value_size: usize,
    capacity: usize,
}

/// Errors from the ORAM-backed KVS.
#[derive(Debug)]
pub enum OramKvsError {
    /// All `n` slots are occupied.
    CapacityExhausted,
    /// Value byte length differs from the configured size.
    BadValueSize {
        /// Provided length.
        got: usize,
        /// Configured length.
        expected: usize,
    },
    /// Underlying ORAM failure.
    Oram(OramError),
}

impl std::fmt::Display for OramKvsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OramKvsError::CapacityExhausted => write!(f, "KVS capacity exhausted"),
            OramKvsError::BadValueSize { got, expected } => {
                write!(f, "value has {got} bytes, expected {expected}")
            }
            OramKvsError::Oram(e) => write!(f, "ORAM failure: {e}"),
        }
    }
}

impl std::error::Error for OramKvsError {}

impl From<OramError> for OramKvsError {
    fn from(e: OramError) -> Self {
        OramKvsError::Oram(e)
    }
}

impl OramKvs {
    /// Creates an empty KVS with room for `capacity` keys of
    /// `value_size`-byte values, backed by an in-process [`SimServer`].
    pub fn new(capacity: usize, value_size: usize, rng: &mut ChaChaRng) -> Self {
        Self::new_on(capacity, value_size, rng)
    }
}

impl<S: Storage> OramKvs<S> {
    /// [`OramKvs::new`] over a default-constructed backend of type `S`.
    /// To configure the server (shard count, worker pool), use
    /// [`OramKvs::new_with`].
    pub fn new_on(capacity: usize, value_size: usize, rng: &mut ChaChaRng) -> Self
    where
        S: Default,
    {
        Self::new_with(capacity, value_size, S::default(), rng)
    }

    /// [`OramKvs::new`] over a caller-constructed backend — e.g.
    /// `OramKvs::new_with(n, v, ShardedServer::new(8).with_pool(..), rng)`.
    pub fn new_with(capacity: usize, value_size: usize, server: S, rng: &mut ChaChaRng) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let zeroes: Vec<Vec<u8>> = vec![vec![0u8; value_size]; capacity];
        let oram = PathOram::setup(
            PathOramConfig::recommended(capacity, value_size),
            &zeroes,
            server,
            rng,
        );
        Self {
            oram,
            directory: std::collections::HashMap::new(),
            free: (0..capacity).rev().collect(),
            value_size,
            capacity,
        }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.directory.len()
    }

    /// True if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.directory.is_empty()
    }

    /// Maximum number of keys.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Blocks moved per operation (hit or miss — identical by design).
    pub fn blocks_per_op(&self) -> usize {
        self.oram.blocks_per_access()
    }

    /// Server cost counters.
    pub fn server_stats(&self) -> dps_server::CostStats {
        self.oram.server_stats()
    }

    /// Looks up `key`. Misses perform a dummy ORAM access so the transcript
    /// shape is hit/miss independent.
    pub fn get(&mut self, key: u64, rng: &mut ChaChaRng) -> Result<Option<Vec<u8>>, OramKvsError> {
        match self.directory.get(&key).copied() {
            Some(index) => Ok(Some(self.oram.read(index, rng)?)),
            None => {
                // Dummy access to an arbitrary slot: same transcript shape.
                let dummy = rng.gen_index(self.capacity);
                let _ = self.oram.read(dummy, rng)?;
                Ok(None)
            }
        }
    }

    /// Inserts or updates `key`.
    pub fn put(
        &mut self,
        key: u64,
        value: Vec<u8>,
        rng: &mut ChaChaRng,
    ) -> Result<(), OramKvsError> {
        if value.len() != self.value_size {
            return Err(OramKvsError::BadValueSize { got: value.len(), expected: self.value_size });
        }
        let index = match self.directory.get(&key).copied() {
            Some(index) => index,
            None => {
                let index = self.free.pop().ok_or(OramKvsError::CapacityExhausted)?;
                self.directory.insert(key, index);
                index
            }
        };
        self.oram.write(index, value, rng)?;
        Ok(())
    }

    /// Removes `key`, returning its value. Performs one ORAM access either
    /// way (dummy on miss).
    pub fn remove(
        &mut self,
        key: u64,
        rng: &mut ChaChaRng,
    ) -> Result<Option<Vec<u8>>, OramKvsError> {
        match self.directory.remove(&key) {
            Some(index) => {
                let old = self.oram.write(index, vec![0u8; self.value_size], rng)?;
                self.free.push(index);
                Ok(Some(old))
            }
            None => {
                let dummy = rng.gen_index(self.capacity);
                let _ = self.oram.read(dummy, rng)?;
                Ok(None)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut rng = ChaChaRng::seed_from_u64(1);
        let mut kvs = OramKvs::new(32, 8, &mut rng);
        kvs.put(0xdead_beef, vec![7u8; 8], &mut rng).unwrap();
        assert_eq!(kvs.get(0xdead_beef, &mut rng).unwrap(), Some(vec![7u8; 8]));
    }

    #[test]
    fn miss_returns_none_but_accesses_oram() {
        let mut rng = ChaChaRng::seed_from_u64(2);
        let mut kvs = OramKvs::new(16, 4, &mut rng);
        let before = kvs.server_stats();
        assert_eq!(kvs.get(42, &mut rng).unwrap(), None);
        let diff = kvs.server_stats().since(&before);
        assert!(diff.downloads > 0, "misses must still touch the ORAM");
    }

    #[test]
    fn update_overwrites() {
        let mut rng = ChaChaRng::seed_from_u64(3);
        let mut kvs = OramKvs::new(16, 4, &mut rng);
        kvs.put(1, vec![1; 4], &mut rng).unwrap();
        kvs.put(1, vec![2; 4], &mut rng).unwrap();
        assert_eq!(kvs.len(), 1);
        assert_eq!(kvs.get(1, &mut rng).unwrap(), Some(vec![2; 4]));
    }

    #[test]
    fn remove_frees_capacity() {
        let mut rng = ChaChaRng::seed_from_u64(4);
        let mut kvs = OramKvs::new(2, 4, &mut rng);
        kvs.put(1, vec![1; 4], &mut rng).unwrap();
        kvs.put(2, vec![2; 4], &mut rng).unwrap();
        assert!(matches!(kvs.put(3, vec![3; 4], &mut rng), Err(OramKvsError::CapacityExhausted)));
        assert_eq!(kvs.remove(1, &mut rng).unwrap(), Some(vec![1; 4]));
        kvs.put(3, vec![3; 4], &mut rng).unwrap();
        assert_eq!(kvs.get(3, &mut rng).unwrap(), Some(vec![3; 4]));
        assert_eq!(kvs.get(1, &mut rng).unwrap(), None);
    }

    #[test]
    fn bad_value_size_rejected() {
        let mut rng = ChaChaRng::seed_from_u64(5);
        let mut kvs = OramKvs::new(4, 4, &mut rng);
        assert!(matches!(
            kvs.put(1, vec![0; 3], &mut rng),
            Err(OramKvsError::BadValueSize { got: 3, expected: 4 })
        ));
    }

    #[test]
    fn many_keys() {
        let mut rng = ChaChaRng::seed_from_u64(6);
        let mut kvs = OramKvs::new(64, 8, &mut rng);
        for k in 0..64u64 {
            kvs.put(k * 1000, vec![k as u8; 8], &mut rng).unwrap();
        }
        for k in 0..64u64 {
            assert_eq!(kvs.get(k * 1000, &mut rng).unwrap(), Some(vec![k as u8; 8]));
        }
    }
}
