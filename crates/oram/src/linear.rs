//! The trivial linear-scan ORAM.
//!
//! Touches every cell on every access: perfectly oblivious (the transcript
//! is constant), `Θ(n)` overhead, no client state beyond the key. This is
//! the degenerate point the DP-IR lower bound (Theorem 3.3) says *errorless*
//! schemes cannot beat, so it doubles as the errorless baseline in E1.

use dps_crypto::{BlockCipher, ChaChaRng};
use dps_server::{SimServer, Storage};

/// A linear-scan ORAM client.
#[derive(Debug)]
pub struct LinearOram<S: Storage = SimServer> {
    n: usize,
    block_size: usize,
    cipher: BlockCipher,
    server: S,
    /// Cached full-scan address list `[0, n)` (every access touches all).
    addrs: Vec<usize>,
    /// Reusable single-block plaintext scratch (only one block is ever
    /// decrypted at a time — the client keeps no plaintext between cells).
    pt_scratch: Vec<u8>,
    /// Reusable per-cell encryption output scratch.
    enc_cell: Vec<u8>,
    /// Reusable flat upload scratch for the strided write-back.
    enc_flat: Vec<u8>,
}

/// Errors from linear ORAM operations.
#[derive(Debug)]
pub enum LinearOramError {
    /// Index out of range.
    IndexOutOfRange {
        /// Requested index.
        index: usize,
        /// Capacity.
        n: usize,
    },
    /// Storage or decryption failure.
    Storage(String),
}

impl std::fmt::Display for LinearOramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinearOramError::IndexOutOfRange { index, n } => {
                write!(f, "index {index} out of range (n = {n})")
            }
            LinearOramError::Storage(msg) => write!(f, "storage failure: {msg}"),
        }
    }
}

impl std::error::Error for LinearOramError {}

impl<S: Storage> LinearOram<S> {
    /// Encrypts `blocks` onto the server.
    pub fn setup(blocks: &[Vec<u8>], mut server: S, rng: &mut ChaChaRng) -> Self {
        assert!(!blocks.is_empty(), "need at least one block");
        let block_size = blocks[0].len();
        assert!(blocks.iter().all(|b| b.len() == block_size), "uniform block size required");
        let cipher = BlockCipher::generate(rng);
        let cells = blocks.iter().map(|b| cipher.encrypt(b, rng).0).collect();
        server.init(cells);
        let n = blocks.len();
        Self {
            n,
            block_size,
            cipher,
            server,
            addrs: (0..n).collect(),
            pt_scratch: Vec::new(),
            enc_cell: Vec::new(),
            enc_flat: Vec::new(),
        }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false (setup requires at least one block).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Server cost counters.
    pub fn server_stats(&self) -> dps_server::CostStats {
        self.server.stats()
    }

    /// Accesses block `index`: downloads **all** cells, re-encrypts and
    /// re-uploads all of them (applying `new_value` if given), and returns
    /// the block's (old) value.
    pub fn access(
        &mut self,
        index: usize,
        new_value: Option<Vec<u8>>,
        rng: &mut ChaChaRng,
    ) -> Result<Vec<u8>, LinearOramError> {
        if index >= self.n {
            return Err(LinearOramError::IndexOutOfRange { index, n: self.n });
        }
        if let Some(v) = &new_value {
            assert_eq!(v.len(), self.block_size, "block size mismatch");
        }
        // Streaming zero-copy scan: each borrowed cell is decrypted into
        // the single-block scratch and immediately re-encrypted into the
        // flat upload buffer, so only one plaintext block is ever resident
        // client-side.
        let cipher = &self.cipher;
        let pt = &mut self.pt_scratch;
        let enc_cell = &mut self.enc_cell;
        let enc_flat = &mut self.enc_flat;
        enc_flat.clear();
        let mut old = Vec::new();
        let mut failure = None;
        self.server
            .read_batch_with(&self.addrs, |i, cell| {
                if let Err(e) = cipher.decrypt_into(cell, pt) {
                    failure.get_or_insert(e);
                    return;
                }
                if i == index {
                    old.extend_from_slice(pt);
                    if let Some(v) = &new_value {
                        pt.clear();
                        pt.extend_from_slice(v);
                    }
                }
                cipher.encrypt_into(pt, enc_cell, rng);
                enc_flat.extend_from_slice(enc_cell);
            })
            .map_err(|e| LinearOramError::Storage(e.to_string()))?;
        if let Some(e) = failure {
            return Err(LinearOramError::Storage(e.to_string()));
        }
        self.server
            .write_batch_strided(&self.addrs, &self.enc_flat)
            .map_err(|e| LinearOramError::Storage(e.to_string()))?;
        Ok(old)
    }

    /// Reads block `index`.
    pub fn read(&mut self, index: usize, rng: &mut ChaChaRng) -> Result<Vec<u8>, LinearOramError> {
        self.access(index, None, rng)
    }

    /// Overwrites block `index`.
    pub fn write(
        &mut self,
        index: usize,
        value: Vec<u8>,
        rng: &mut ChaChaRng,
    ) -> Result<Vec<u8>, LinearOramError> {
        self.access(index, Some(value), rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: usize) -> (LinearOram, ChaChaRng) {
        let mut rng = ChaChaRng::seed_from_u64(1);
        let blocks: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 8]).collect();
        let oram = LinearOram::setup(&blocks, SimServer::new(), &mut rng);
        (oram, rng)
    }

    #[test]
    fn read_write_round_trip() {
        let (mut oram, mut rng) = build(10);
        assert_eq!(oram.read(3, &mut rng).unwrap(), vec![3u8; 8]);
        oram.write(3, vec![0xFF; 8], &mut rng).unwrap();
        assert_eq!(oram.read(3, &mut rng).unwrap(), vec![0xFF; 8]);
    }

    #[test]
    fn every_access_touches_all_cells() {
        let (mut oram, mut rng) = build(16);
        let before = oram.server_stats();
        oram.read(0, &mut rng).unwrap();
        let diff = oram.server_stats().since(&before);
        assert_eq!(diff.downloads, 16);
        assert_eq!(diff.uploads, 16);
    }

    #[test]
    fn transcript_is_query_independent() {
        // Perfect obliviousness: identical views for different queries.
        let (mut a, mut rng_a) = build(8);
        a.server.start_recording();
        a.read(1, &mut rng_a).unwrap();
        let view_a = a.server.take_transcript().canonical_encoding();

        let (mut b, mut rng_b) = build(8);
        b.server.start_recording();
        b.read(6, &mut rng_b).unwrap();
        let view_b = b.server.take_transcript().canonical_encoding();
        assert_eq!(view_a, view_b);
    }

    #[test]
    fn out_of_range() {
        let (mut oram, mut rng) = build(4);
        assert!(matches!(
            oram.read(4, &mut rng),
            Err(LinearOramError::IndexOutOfRange { .. })
        ));
    }
}
