//! The trivial linear-scan ORAM.
//!
//! Touches every cell on every access: perfectly oblivious (the transcript
//! is constant), `Θ(n)` overhead, no client state beyond the key. This is
//! the degenerate point the DP-IR lower bound (Theorem 3.3) says *errorless*
//! schemes cannot beat, so it doubles as the errorless baseline in E1.

use dps_crypto::{BlockCipher, ChaChaRng, CIPHERTEXT_OVERHEAD};
use dps_server::{batch_crypto, SimServer, Storage, WorkerPool};

/// A linear-scan ORAM client.
///
/// Every access re-encrypts the whole database, so this is the workspace's
/// most keystream-bound scheme. The scan runs as three flat batch phases —
/// bulk strided download, batch decrypt, batch re-encrypt, strided upload —
/// through [`dps_server::batch_crypto`], which drives the wide 4-lane
/// ChaCha20/Poly1305 core per chunk and optionally fans chunks across a
/// [`WorkerPool`] ([`LinearOram::with_pool`]; the default pool is
/// sequential and runs everything inline on the caller thread). Output is
/// byte-identical for every pool width: nonces are pre-drawn in cell order
/// on the caller thread.
///
/// Memory profile: the batch phases hold the whole database (ciphertext,
/// plaintext, and re-encrypted forms — ~3× the DB size in reusable
/// scratch) for the duration of one access, where the former streaming
/// scan held a single plaintext block. The plaintext scratch is zeroed
/// before each access returns; the client is trusted in this model, so
/// the trade is residency, not privacy.
#[derive(Debug)]
pub struct LinearOram<S: Storage = SimServer> {
    n: usize,
    block_size: usize,
    cipher: BlockCipher,
    server: S,
    /// Worker pool for the batch crypto phases (sequential by default).
    pool: WorkerPool,
    /// Cached full-scan address list `[0, n)` (every access touches all).
    addrs: Vec<usize>,
    /// Reusable flat download scratch (all `n` ciphertexts, strided).
    ct_flat: Vec<u8>,
    /// Reusable flat plaintext scratch (all `n` blocks, strided).
    pt_flat: Vec<u8>,
    /// Reusable flat upload scratch for the strided write-back.
    enc_flat: Vec<u8>,
}

/// Errors from linear ORAM operations.
#[derive(Debug)]
pub enum LinearOramError {
    /// Index out of range.
    IndexOutOfRange {
        /// Requested index.
        index: usize,
        /// Capacity.
        n: usize,
    },
    /// Storage or decryption failure.
    Storage(String),
}

impl std::fmt::Display for LinearOramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinearOramError::IndexOutOfRange { index, n } => {
                write!(f, "index {index} out of range (n = {n})")
            }
            LinearOramError::Storage(msg) => write!(f, "storage failure: {msg}"),
        }
    }
}

impl std::error::Error for LinearOramError {}

impl<S: Storage> LinearOram<S> {
    /// Encrypts `blocks` onto the server.
    pub fn setup(blocks: &[Vec<u8>], mut server: S, rng: &mut ChaChaRng) -> Self {
        assert!(!blocks.is_empty(), "need at least one block");
        let block_size = blocks[0].len();
        assert!(blocks.iter().all(|b| b.len() == block_size), "uniform block size required");
        let cipher = BlockCipher::generate(rng);
        let cells = blocks.iter().map(|b| cipher.encrypt(b, rng).0).collect();
        server.init(cells);
        let n = blocks.len();
        Self {
            n,
            block_size,
            cipher,
            server,
            pool: WorkerPool::single(),
            addrs: (0..n).collect(),
            ct_flat: Vec::new(),
            pt_flat: Vec::new(),
            enc_flat: Vec::new(),
        }
    }

    /// Sets the worker pool that fans the per-access batch decrypt and
    /// re-encrypt across threads. The default ([`WorkerPool::single`])
    /// runs inline on the caller thread; any width produces byte-identical
    /// cells and transcripts.
    pub fn with_pool(mut self, pool: WorkerPool) -> Self {
        self.pool = pool;
        self
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false (setup requires at least one block).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Server cost counters.
    pub fn server_stats(&self) -> dps_server::CostStats {
        self.server.stats()
    }

    /// Accesses block `index`: downloads **all** cells, re-encrypts and
    /// re-uploads all of them (applying `new_value` if given), and returns
    /// the block's (old) value.
    pub fn access(
        &mut self,
        index: usize,
        new_value: Option<Vec<u8>>,
        rng: &mut ChaChaRng,
    ) -> Result<Vec<u8>, LinearOramError> {
        if index >= self.n {
            return Err(LinearOramError::IndexOutOfRange { index, n: self.n });
        }
        if let Some(v) = &new_value {
            assert_eq!(v.len(), self.block_size, "block size mismatch");
        }
        // Flat batch scan: bulk-download every ciphertext, batch-decrypt
        // the whole database, apply the overwrite, then batch re-encrypt
        // and upload. Nonces are pre-drawn in cell order, so the upload is
        // byte-identical to the former streaming per-cell loop over the
        // same RNG stream — for any pool width.
        let ct_stride = self.block_size + CIPHERTEXT_OVERHEAD;
        self.ct_flat.resize(self.n * ct_stride, 0);
        self.server
            .read_batch_strided(&self.addrs, &mut self.ct_flat)
            .map_err(|e| LinearOramError::Storage(e.to_string()))?;
        self.pt_flat.resize(self.n * self.block_size, 0);
        if let Err(e) = batch_crypto::decrypt_batch_strided(
            &self.pool,
            &self.cipher,
            &self.ct_flat,
            self.n,
            &mut self.pt_flat,
        ) {
            // Scrub the partially decrypted blocks on the error path too —
            // no plaintext may outlive the call in the reusable scratch.
            self.pt_flat.fill(0);
            return Err(LinearOramError::Storage(e.to_string()));
        }
        let slot = &mut self.pt_flat[index * self.block_size..(index + 1) * self.block_size];
        let old = slot.to_vec();
        if let Some(v) = &new_value {
            slot.copy_from_slice(v);
        }
        let nonces = rng.draw_nonces(self.n);
        self.enc_flat.resize(self.n * ct_stride, 0);
        batch_crypto::encrypt_batch_strided(
            &self.pool,
            &self.cipher,
            &nonces,
            &self.pt_flat,
            &mut self.enc_flat,
        );
        // Unlike the former streaming scan (one plaintext block resident
        // at a time), the batch phases hold the whole decrypted database
        // for the duration of the access. Scrub it before returning so no
        // plaintext outlives the call in the reusable scratch.
        self.pt_flat.fill(0);
        self.server
            .write_batch_strided(&self.addrs, &self.enc_flat)
            .map_err(|e| LinearOramError::Storage(e.to_string()))?;
        Ok(old)
    }

    /// Reads block `index`.
    pub fn read(&mut self, index: usize, rng: &mut ChaChaRng) -> Result<Vec<u8>, LinearOramError> {
        self.access(index, None, rng)
    }

    /// Overwrites block `index`.
    pub fn write(
        &mut self,
        index: usize,
        value: Vec<u8>,
        rng: &mut ChaChaRng,
    ) -> Result<Vec<u8>, LinearOramError> {
        self.access(index, Some(value), rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: usize) -> (LinearOram, ChaChaRng) {
        let mut rng = ChaChaRng::seed_from_u64(1);
        let blocks: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 8]).collect();
        let oram = LinearOram::setup(&blocks, SimServer::new(), &mut rng);
        (oram, rng)
    }

    #[test]
    fn read_write_round_trip() {
        let (mut oram, mut rng) = build(10);
        assert_eq!(oram.read(3, &mut rng).unwrap(), vec![3u8; 8]);
        oram.write(3, vec![0xFF; 8], &mut rng).unwrap();
        assert_eq!(oram.read(3, &mut rng).unwrap(), vec![0xFF; 8]);
    }

    #[test]
    fn every_access_touches_all_cells() {
        let (mut oram, mut rng) = build(16);
        let before = oram.server_stats();
        oram.read(0, &mut rng).unwrap();
        let diff = oram.server_stats().since(&before);
        assert_eq!(diff.downloads, 16);
        assert_eq!(diff.uploads, 16);
    }

    #[test]
    fn transcript_is_query_independent() {
        // Perfect obliviousness: identical views for different queries.
        let (mut a, mut rng_a) = build(8);
        a.server.start_recording();
        a.read(1, &mut rng_a).unwrap();
        let view_a = a.server.take_transcript().canonical_encoding();

        let (mut b, mut rng_b) = build(8);
        b.server.start_recording();
        b.read(6, &mut rng_b).unwrap();
        let view_b = b.server.take_transcript().canonical_encoding();
        assert_eq!(view_a, view_b);
    }

    #[test]
    fn out_of_range() {
        let (mut oram, mut rng) = build(4);
        assert!(matches!(oram.read(4, &mut rng), Err(LinearOramError::IndexOutOfRange { .. })));
    }

    /// A pooled LinearOram produces the same results, stats, and
    /// transcripts as the sequential default from the same seed — the
    /// determinism contract of the batch-crypto wiring.
    #[test]
    fn pooled_access_is_byte_identical() {
        let n = 16;
        let blocks: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 24]).collect();
        let run = |threads: usize| {
            let mut rng = ChaChaRng::seed_from_u64(99);
            let mut oram = LinearOram::setup(&blocks, SimServer::new(), &mut rng)
                .with_pool(WorkerPool::new(threads));
            oram.server.start_recording();
            let mut outputs = Vec::new();
            for i in [3usize, 0, 15, 3] {
                outputs.push(oram.read(i, &mut rng).unwrap());
            }
            outputs.push(oram.write(7, vec![0xEE; 24], &mut rng).unwrap());
            outputs.push(oram.read(7, &mut rng).unwrap());
            (outputs, oram.server_stats(), oram.server.take_transcript().canonical_encoding())
        };
        let sequential = run(1);
        for threads in [2usize, 4] {
            assert_eq!(run(threads), sequential, "threads = {threads}");
        }
    }
}
