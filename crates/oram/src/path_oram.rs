//! Path ORAM (Stefanov et al., CCS 2013).
//!
//! The canonical low-overhead ORAM and the scheme the paper's DP-RAM is
//! measured against. Server storage is a complete binary tree of height `L`
//! (`2^{L+1} - 1` buckets of `Z` slots); the client holds a position map
//! (`n` leaf labels) and a stash. Every access reads one root-to-leaf path,
//! remaps the block to a fresh random leaf, and greedily writes the path
//! back — `2·Z·(L+1)` blocks of bandwidth over 2 round trips, `Θ(log n)`
//! overhead.

use dps_crypto::{BlockCipher, ChaChaRng};
use dps_server::{SimServer, Storage};

use crate::slots::{decode_bucket, encode_bucket, encode_bucket_into, Slot};

/// Configuration for [`PathOram`].
#[derive(Debug, Clone, Copy)]
pub struct PathOramConfig {
    /// Number of logical blocks.
    pub n: usize,
    /// Block payload size in bytes.
    pub block_size: usize,
    /// Slots per bucket (`Z`; 4 is the standard stash-safe choice).
    pub bucket_size: usize,
}

impl PathOramConfig {
    /// Standard parameters: `Z = 4`.
    pub fn recommended(n: usize, block_size: usize) -> Self {
        Self { n, block_size, bucket_size: 4 }
    }
}

/// Errors from Path ORAM operations.
#[derive(Debug)]
pub enum OramError {
    /// Block index out of `[0, n)`.
    IndexOutOfRange {
        /// Requested index.
        index: usize,
        /// Capacity.
        n: usize,
    },
    /// A value of the wrong byte length was written.
    BadBlockSize {
        /// Provided length.
        got: usize,
        /// Configured length.
        expected: usize,
    },
    /// Server or decryption failure (corrupted state).
    Storage(String),
}

impl std::fmt::Display for OramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OramError::IndexOutOfRange { index, n } => {
                write!(f, "block index {index} out of range (n = {n})")
            }
            OramError::BadBlockSize { got, expected } => {
                write!(f, "block has {got} bytes, expected {expected}")
            }
            OramError::Storage(msg) => write!(f, "storage failure: {msg}"),
        }
    }
}

impl std::error::Error for OramError {}

/// A Path ORAM client bound to a simulated server.
#[derive(Debug)]
pub struct PathOram<S: Storage = SimServer> {
    config: PathOramConfig,
    /// Tree height: leaves are at level `height`, `2^height` of them.
    height: u32,
    cipher: BlockCipher,
    position: Vec<usize>,
    stash: std::collections::HashMap<u64, Vec<u8>>,
    server: S,
    /// Reusable root-to-leaf address scratch (read order; reversed for the
    /// bottom-up eviction upload).
    path_scratch: Vec<usize>,
    evict_addrs: Vec<usize>,
    /// Reusable plaintext / bucket-encode / encryption scratch buffers.
    pt_scratch: Vec<u8>,
    bucket_scratch: Vec<u8>,
    enc_cell: Vec<u8>,
    enc_flat: Vec<u8>,
}

impl<S: Storage> PathOram<S> {
    /// Builds the ORAM over `blocks`, encrypting and uploading the initial
    /// tree, and returns the client.
    ///
    /// # Panics
    /// Panics if `blocks.len() != config.n`, `n == 0`, or any block has the
    /// wrong size.
    pub fn setup(
        config: PathOramConfig,
        blocks: &[Vec<u8>],
        mut server: S,
        rng: &mut ChaChaRng,
    ) -> Self {
        assert_eq!(blocks.len(), config.n, "block count mismatch");
        assert!(config.n > 0, "need at least one block");
        assert!(config.bucket_size > 0, "bucket size must be positive");
        for b in blocks {
            assert_eq!(b.len(), config.block_size, "block size mismatch");
        }

        let height = usize::BITS - 1 - config.n.next_power_of_two().leading_zeros();
        let num_buckets = (1usize << (height + 1)) - 1;
        let cipher = BlockCipher::generate(rng);

        // Assign random leaves, then build the tree bottom-up by evicting
        // every block along its own path (greedy initial packing); blocks
        // that do not fit go to the stash, exactly as during operation.
        let position: Vec<usize> = (0..config.n).map(|_| rng.gen_index(1usize << height)).collect();

        let mut buckets: Vec<Vec<Slot>> = vec![Vec::new(); num_buckets];
        let mut stash = std::collections::HashMap::new();
        for (index, block) in blocks.iter().enumerate() {
            let leaf = position[index];
            let mut placed = false;
            // Deepest-first placement along the block's path.
            for level in (0..=height).rev() {
                let b = Self::bucket_index(leaf, level, height);
                if buckets[b].len() < config.bucket_size {
                    buckets[b].push(Slot { id: index as u64, payload: block.clone() });
                    placed = true;
                    break;
                }
            }
            if !placed {
                stash.insert(index as u64, block.clone());
            }
        }

        let cells: Vec<Vec<u8>> = buckets
            .iter()
            .map(|slots| {
                let plain = encode_bucket(slots, config.bucket_size, config.block_size);
                cipher.encrypt(&plain, rng).0
            })
            .collect();
        server.init(cells);

        Self {
            config,
            height,
            cipher,
            position,
            stash,
            server,
            path_scratch: Vec::new(),
            evict_addrs: Vec::new(),
            pt_scratch: Vec::new(),
            bucket_scratch: Vec::new(),
            enc_cell: Vec::new(),
            enc_flat: Vec::new(),
        }
    }

    /// The bucket id at `level` on the path to `leaf` (level 0 = root).
    fn bucket_index(leaf: usize, level: u32, height: u32) -> usize {
        ((1usize << level) - 1) + (leaf >> (height - level))
    }

    /// Number of levels in the tree (`L + 1`).
    pub fn levels(&self) -> usize {
        self.height as usize + 1
    }

    /// Blocks moved per access: `2 · Z · (L+1)` (path down + path up).
    pub fn blocks_per_access(&self) -> usize {
        2 * self.config.bucket_size * self.levels()
    }

    /// Round trips per access with the position map held recursively in
    /// smaller ORAMs, as small-client deployments require: each recursion
    /// level packs `pack` positions per block, giving
    /// `2 · (1 + ceil(log_pack n))` round trips. With the in-client map
    /// (this implementation) each access is 2 round trips.
    pub fn recursive_round_trips(&self, pack: usize) -> usize {
        assert!(pack >= 2);
        let mut levels = 0usize;
        let mut remaining = self.config.n;
        while remaining > 1 {
            remaining = remaining.div_ceil(pack);
            levels += 1;
        }
        2 * (levels + 1)
    }

    /// Current stash occupancy (blocks buffered client-side).
    pub fn stash_size(&self) -> usize {
        self.stash.len()
    }

    /// Server cost counters.
    pub fn server_stats(&self) -> dps_server::CostStats {
        self.server.stats()
    }

    /// Mutable access to the underlying server (transcript control).
    pub fn server_mut(&mut self) -> &mut S {
        &mut self.server
    }

    /// Reads block `index`.
    pub fn read(&mut self, index: usize, rng: &mut ChaChaRng) -> Result<Vec<u8>, OramError> {
        self.access(index, None, rng)
    }

    /// Overwrites block `index` with `value` and returns the old value.
    pub fn write(
        &mut self,
        index: usize,
        value: Vec<u8>,
        rng: &mut ChaChaRng,
    ) -> Result<Vec<u8>, OramError> {
        if value.len() != self.config.block_size {
            return Err(OramError::BadBlockSize {
                got: value.len(),
                expected: self.config.block_size,
            });
        }
        self.access(index, Some(value), rng)
    }

    fn access(
        &mut self,
        index: usize,
        new_value: Option<Vec<u8>>,
        rng: &mut ChaChaRng,
    ) -> Result<Vec<u8>, OramError> {
        if index >= self.config.n {
            return Err(OramError::IndexOutOfRange { index, n: self.config.n });
        }

        let leaf = self.position[index];
        self.position[index] = rng.gen_index(1usize << self.height);

        // Round trip 1: read the whole path into the stash. Each borrowed
        // bucket ciphertext is decrypted into the reusable plaintext
        // scratch and decoded from there — no per-bucket allocation beyond
        // the stash entries themselves.
        self.path_scratch.clear();
        self.path_scratch
            .extend((0..=self.height).map(|level| Self::bucket_index(leaf, level, self.height)));
        {
            let cipher = &self.cipher;
            let stash = &mut self.stash;
            let pt = &mut self.pt_scratch;
            let (bucket_size, block_size) = (self.config.bucket_size, self.config.block_size);
            let mut failure: Option<String> = None;
            self.server
                .read_batch_with(&self.path_scratch, |_, cell| {
                    if let Err(e) = cipher.decrypt_into(cell, pt) {
                        failure.get_or_insert(e.to_string());
                        return;
                    }
                    match decode_bucket(pt, bucket_size, block_size) {
                        Ok(slots) => {
                            for slot in slots {
                                stash.insert(slot.id, slot.payload);
                            }
                        }
                        Err(e) => {
                            failure.get_or_insert(e.to_string());
                        }
                    }
                })
                .map_err(|e| OramError::Storage(e.to_string()))?;
            if let Some(e) = failure {
                return Err(OramError::Storage(e));
            }
        }

        let current = self
            .stash
            .get(&(index as u64))
            .cloned()
            .ok_or_else(|| OramError::Storage(format!("block {index} missing from path")))?;
        if let Some(value) = new_value {
            self.stash.insert(index as u64, value);
        }

        // Round trip 2: greedy bottom-up eviction along the same path,
        // each bucket encoded and encrypted through reusable scratch into
        // one flat strided upload.
        self.evict_addrs.clear();
        self.enc_flat.clear();
        for level in (0..=self.height).rev() {
            let bucket_id = Self::bucket_index(leaf, level, self.height);
            let mut chosen: Vec<u64> = Vec::with_capacity(self.config.bucket_size);
            for (&id, _) in self.stash.iter() {
                if chosen.len() == self.config.bucket_size {
                    break;
                }
                let block_leaf = self.position[id as usize];
                if Self::bucket_index(block_leaf, level, self.height) == bucket_id {
                    chosen.push(id);
                }
            }
            let slots: Vec<Slot> = chosen
                .iter()
                .map(|id| Slot {
                    id: *id,
                    payload: self.stash.remove(id).expect("chosen from stash"),
                })
                .collect();
            encode_bucket_into(
                &slots,
                self.config.bucket_size,
                self.config.block_size,
                &mut self.bucket_scratch,
            );
            self.cipher
                .encrypt_into(&self.bucket_scratch, &mut self.enc_cell, rng);
            self.enc_flat.extend_from_slice(&self.enc_cell);
            self.evict_addrs.push(bucket_id);
        }
        self.server
            .write_batch_strided(&self.evict_addrs, &self.enc_flat)
            .map_err(|e| OramError::Storage(e.to_string()))?;

        Ok(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: usize, seed: u64) -> (PathOram, ChaChaRng) {
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let blocks: Vec<Vec<u8>> = (0..n).map(|i| vec![(i % 251) as u8; 16]).collect();
        let oram = PathOram::setup(
            PathOramConfig::recommended(n, 16),
            &blocks,
            SimServer::new(),
            &mut rng,
        );
        (oram, rng)
    }

    #[test]
    fn read_returns_initial_contents() {
        let (mut oram, mut rng) = build(64, 1);
        for i in [0usize, 1, 31, 63] {
            assert_eq!(oram.read(i, &mut rng).unwrap(), vec![(i % 251) as u8; 16]);
        }
    }

    #[test]
    fn write_then_read() {
        let (mut oram, mut rng) = build(32, 2);
        let old = oram.write(5, vec![0xEE; 16], &mut rng).unwrap();
        assert_eq!(old, vec![5u8; 16]);
        assert_eq!(oram.read(5, &mut rng).unwrap(), vec![0xEE; 16]);
    }

    #[test]
    fn random_workload_matches_reference() {
        let (mut oram, mut rng) = build(50, 3);
        let mut reference: Vec<Vec<u8>> = (0..50).map(|i| vec![(i % 251) as u8; 16]).collect();
        for step in 0..500 {
            let i = rng.gen_index(50);
            if rng.gen_bool(0.5) {
                let new = vec![(step % 256) as u8; 16];
                oram.write(i, new.clone(), &mut rng).unwrap();
                reference[i] = new;
            } else {
                assert_eq!(oram.read(i, &mut rng).unwrap(), reference[i], "step {step}");
            }
        }
    }

    #[test]
    fn stash_stays_small() {
        let (mut oram, mut rng) = build(256, 4);
        let mut max_stash = 0;
        for _ in 0..2000 {
            let i = rng.gen_index(256);
            oram.read(i, &mut rng).unwrap();
            max_stash = max_stash.max(oram.stash_size());
        }
        // With Z = 4 the stash is O(log n) whp; 60 is a generous envelope.
        assert!(max_stash < 60, "stash grew to {max_stash}");
    }

    #[test]
    fn bandwidth_is_z_times_path_both_ways() {
        let (mut oram, mut rng) = build(128, 5);
        let before = oram.server_stats();
        oram.read(0, &mut rng).unwrap();
        let diff = oram.server_stats().since(&before);
        let levels = oram.levels() as u64;
        assert_eq!(diff.downloads, levels);
        assert_eq!(diff.uploads, levels);
        assert_eq!(diff.round_trips, 2);
        assert_eq!(oram.blocks_per_access(), 8 * oram.levels());
    }

    #[test]
    fn out_of_range_rejected() {
        let (mut oram, mut rng) = build(8, 6);
        assert!(matches!(
            oram.read(8, &mut rng),
            Err(OramError::IndexOutOfRange { index: 8, n: 8 })
        ));
    }

    #[test]
    fn wrong_block_size_rejected() {
        let (mut oram, mut rng) = build(8, 7);
        assert!(matches!(
            oram.write(0, vec![0u8; 5], &mut rng),
            Err(OramError::BadBlockSize { got: 5, expected: 16 })
        ));
    }

    #[test]
    fn recursive_round_trips_grow_logarithmically() {
        let (oram, _) = build(1 << 10, 8);
        // pack = 256 positions/block: ceil(log_256 1024) = 2 levels -> 6 RTs.
        assert_eq!(oram.recursive_round_trips(256), 6);
        let (big, _) = build(1 << 12, 9);
        assert!(big.recursive_round_trips(4) > big.recursive_round_trips(256));
    }

    #[test]
    fn non_power_of_two_n() {
        let (mut oram, mut rng) = build(100, 10);
        for i in [0usize, 57, 99] {
            assert_eq!(oram.read(i, &mut rng).unwrap(), vec![(i % 251) as u8; 16]);
        }
    }
}
