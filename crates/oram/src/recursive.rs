//! Recursive Path ORAM: the position map stored in smaller ORAMs.
//!
//! The paper's comparison against prior DP-RAM work (\[50\], built on Path
//! ORAM \[48\]) hinges on *round trips*: "for their scheme to achieve even
//! client storage of `O(√n)`, their construction recursively stores
//! position maps which costs both logarithmic overhead and client-to-server
//! roundtrips". [`crate::PathOram`] keeps its position map client-side
//! (`n` words of client state), so its 2-round-trip cost understates what a
//! small-client deployment pays. This module implements the real recursion:
//! the `n`-entry position map is packed `pack` leaf labels per block into a
//! second Path ORAM, whose own (smaller) map is packed into a third, and so
//! on until the top map fits in client memory. Every logical access then
//! walks the whole chain — `2·(1 + ⌈log_pack n⌉)` round trips — which is the
//! `Θ(log n)` round-trip cost DP-RAM's `O(1)` beats (experiment E5).
//!
//! Each stored block carries its current leaf label alongside the payload
//! so that eviction never needs a position-map lookup (the standard
//! recursion-safe layout).

use std::collections::HashMap;

use dps_crypto::{BlockCipher, ChaChaRng};
use dps_server::{SimServer, Storage};

use crate::path_oram::OramError;
use crate::slots::{decode_bucket, encode_bucket, encode_bucket_into, Slot};

/// Bytes used to encode one leaf label inside a payload.
const LEAF_BYTES: usize = 4;

/// One Path ORAM tree whose position map lives *outside* it: callers pass
/// the block's current leaf and its replacement on every access.
#[derive(Debug)]
struct TreeLayer<S: Storage> {
    n: usize,
    /// Payload bytes per logical block (excluding the attached leaf label).
    payload_size: usize,
    bucket_size: usize,
    height: u32,
    cipher: BlockCipher,
    /// Stash entries: block id → (current leaf, payload).
    stash: HashMap<u64, (usize, Vec<u8>)>,
    server: S,
    /// Reusable scratch buffers for the zero-copy access path.
    path_scratch: Vec<usize>,
    evict_addrs: Vec<usize>,
    pt_scratch: Vec<u8>,
    bucket_scratch: Vec<u8>,
    enc_cell: Vec<u8>,
    enc_flat: Vec<u8>,
}

impl<S: Storage> TreeLayer<S> {
    /// Builds the layer over `blocks`, assigning each a random leaf.
    /// Returns the layer and the assigned leaves (the caller must store
    /// them — that is the whole point of the recursion).
    fn setup(
        blocks: &[Vec<u8>],
        bucket_size: usize,
        mut server: S,
        rng: &mut ChaChaRng,
    ) -> (Self, Vec<usize>) {
        assert!(!blocks.is_empty());
        let n = blocks.len();
        let payload_size = blocks[0].len();
        let height = usize::BITS - 1 - n.next_power_of_two().leading_zeros();
        let num_buckets = (1usize << (height + 1)) - 1;
        let cipher = BlockCipher::generate(rng);

        let positions: Vec<usize> = (0..n).map(|_| rng.gen_index(1usize << height)).collect();
        let mut buckets: Vec<Vec<Slot>> = vec![Vec::new(); num_buckets];
        let mut stash = HashMap::new();
        for (index, block) in blocks.iter().enumerate() {
            let leaf = positions[index];
            let mut placed = false;
            for level in (0..=height).rev() {
                let b = Self::bucket_index(leaf, level, height);
                if buckets[b].len() < bucket_size {
                    buckets[b]
                        .push(Slot { id: index as u64, payload: Self::attach_leaf(leaf, block) });
                    placed = true;
                    break;
                }
            }
            if !placed {
                stash.insert(index as u64, (leaf, block.clone()));
            }
        }

        let stored_size = LEAF_BYTES + payload_size;
        let cells: Vec<Vec<u8>> = buckets
            .iter()
            .map(|slots| {
                let plain = encode_bucket(slots, bucket_size, stored_size);
                cipher.encrypt(&plain, rng).0
            })
            .collect();
        server.init(cells);

        (
            Self {
                n,
                payload_size,
                bucket_size,
                height,
                cipher,
                stash,
                server,
                path_scratch: Vec::new(),
                evict_addrs: Vec::new(),
                pt_scratch: Vec::new(),
                bucket_scratch: Vec::new(),
                enc_cell: Vec::new(),
                enc_flat: Vec::new(),
            },
            positions,
        )
    }

    fn attach_leaf(leaf: usize, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(LEAF_BYTES + payload.len());
        out.extend_from_slice(&(leaf as u32).to_le_bytes());
        out.extend_from_slice(payload);
        out
    }

    fn split_leaf(stored: &[u8]) -> (usize, Vec<u8>) {
        let leaf = u32::from_le_bytes(stored[..LEAF_BYTES].try_into().expect("leaf prefix"));
        (leaf as usize, stored[LEAF_BYTES..].to_vec())
    }

    fn bucket_index(leaf: usize, level: u32, height: u32) -> usize {
        ((1usize << level) - 1) + (leaf >> (height - level))
    }

    fn num_leaves(&self) -> usize {
        1usize << self.height
    }

    /// Accesses block `index`, whose current leaf is `old_leaf`, remapping
    /// it to `new_leaf`. `mutate` rewrites the payload in place. Returns the
    /// payload *before* mutation.
    fn access(
        &mut self,
        index: usize,
        old_leaf: usize,
        new_leaf: usize,
        mutate: impl FnOnce(&mut Vec<u8>),
        rng: &mut ChaChaRng,
    ) -> Result<Vec<u8>, OramError> {
        debug_assert!(index < self.n);
        let stored_size = LEAF_BYTES + self.payload_size;

        // Round trip 1: path down into the stash, decrypting each borrowed
        // bucket slice through the reusable plaintext scratch.
        self.path_scratch.clear();
        self.path_scratch.extend(
            (0..=self.height).map(|level| Self::bucket_index(old_leaf, level, self.height)),
        );
        {
            let cipher = &self.cipher;
            let stash = &mut self.stash;
            let pt = &mut self.pt_scratch;
            let bucket_size = self.bucket_size;
            let mut failure: Option<String> = None;
            self.server
                .read_batch_with(&self.path_scratch, |_, cell| {
                    if let Err(e) = cipher.decrypt_into(cell, pt) {
                        failure.get_or_insert(e.to_string());
                        return;
                    }
                    match decode_bucket(pt, bucket_size, stored_size) {
                        Ok(slots) => {
                            for slot in slots {
                                let (leaf, payload) = Self::split_leaf(&slot.payload);
                                stash.insert(slot.id, (leaf, payload));
                            }
                        }
                        Err(e) => {
                            failure.get_or_insert(e.to_string());
                        }
                    }
                })
                .map_err(|e| OramError::Storage(e.to_string()))?;
            if let Some(e) = failure {
                return Err(OramError::Storage(e));
            }
        }

        let entry = self
            .stash
            .get_mut(&(index as u64))
            .ok_or_else(|| OramError::Storage(format!("block {index} missing from path")))?;
        let before = entry.1.clone();
        entry.0 = new_leaf;
        mutate(&mut entry.1);

        // Round trip 2: greedy bottom-up eviction along the old path, into
        // one flat strided upload.
        self.evict_addrs.clear();
        self.enc_flat.clear();
        for level in (0..=self.height).rev() {
            let bucket_id = Self::bucket_index(old_leaf, level, self.height);
            let chosen: Vec<u64> = self
                .stash
                .iter()
                .filter(|(_, (leaf, _))| Self::bucket_index(*leaf, level, self.height) == bucket_id)
                .map(|(&id, _)| id)
                .take(self.bucket_size)
                .collect();
            let slots: Vec<Slot> = chosen
                .iter()
                .map(|id| {
                    let (leaf, payload) = self.stash.remove(id).expect("chosen from stash");
                    Slot { id: *id, payload: Self::attach_leaf(leaf, &payload) }
                })
                .collect();
            encode_bucket_into(&slots, self.bucket_size, stored_size, &mut self.bucket_scratch);
            self.cipher
                .encrypt_into(&self.bucket_scratch, &mut self.enc_cell, rng);
            self.enc_flat.extend_from_slice(&self.enc_cell);
            self.evict_addrs.push(bucket_id);
        }
        self.server
            .write_batch_strided(&self.evict_addrs, &self.enc_flat)
            .map_err(|e| OramError::Storage(e.to_string()))?;

        Ok(before)
    }
}

/// Configuration for [`RecursivePathOram`].
#[derive(Debug, Clone, Copy)]
pub struct RecursiveOramConfig {
    /// Number of logical data blocks.
    pub n: usize,
    /// Data block payload size in bytes.
    pub block_size: usize,
    /// Slots per bucket (`Z`).
    pub bucket_size: usize,
    /// Leaf labels packed per position-map block.
    pub pack: usize,
    /// Recursion stops once a map has at most this many entries; the final
    /// map is held client-side.
    pub client_map_limit: usize,
}

impl RecursiveOramConfig {
    /// Standard parameters: `Z = 4`, 64 labels per map block, client map
    /// capped at 64 entries.
    pub fn recommended(n: usize, block_size: usize) -> Self {
        Self { n, block_size, bucket_size: 4, pack: 64, client_map_limit: 64 }
    }
}

/// Path ORAM with the position map stored recursively in smaller ORAMs —
/// the small-client deployment whose `Θ(log n)` round trips the paper's
/// DP-RAM comparison targets.
#[derive(Debug)]
pub struct RecursivePathOram<S: Storage = SimServer> {
    config: RecursiveOramConfig,
    /// `layers[0]` stores data; `layers[j]` stores the position map of
    /// `layers[j-1]`, packed `pack` labels per block.
    layers: Vec<TreeLayer<S>>,
    /// Positions of the top layer's blocks, held client-side.
    client_map: Vec<usize>,
}

impl RecursivePathOram {
    /// Builds the recursion over in-process [`SimServer`]s (one per
    /// layer). See [`RecursivePathOram::setup_on`] for other backends.
    ///
    /// # Panics
    /// Panics on empty input, non-uniform block sizes, or `pack < 2`.
    pub fn setup(config: RecursiveOramConfig, blocks: &[Vec<u8>], rng: &mut ChaChaRng) -> Self {
        Self::setup_on(config, blocks, rng)
    }
}

impl<S: Storage> RecursivePathOram<S> {
    /// Builds the recursion over default-constructed servers of type `S`
    /// (one per layer). Use [`RecursivePathOram::setup_with`] to configure
    /// each layer's server.
    ///
    /// # Panics
    /// Panics on empty input, non-uniform block sizes, or `pack < 2`.
    pub fn setup_on(config: RecursiveOramConfig, blocks: &[Vec<u8>], rng: &mut ChaChaRng) -> Self
    where
        S: Default,
    {
        Self::setup_with(config, blocks, rng, |_| S::default())
    }

    /// Builds the recursion bottom-up over `blocks` with a caller-supplied
    /// server factory: `make(j)` builds the server backing layer `j`
    /// (layer 0 stores data, higher layers the position maps). Cost
    /// counters aggregate over all of them.
    ///
    /// # Panics
    /// Panics on empty input, non-uniform block sizes, or `pack < 2`.
    pub fn setup_with(
        config: RecursiveOramConfig,
        blocks: &[Vec<u8>],
        rng: &mut ChaChaRng,
        mut make: impl FnMut(usize) -> S,
    ) -> Self {
        assert_eq!(blocks.len(), config.n, "block count mismatch");
        assert!(config.n > 0, "need at least one block");
        assert!(config.pack >= 2, "pack must be at least 2");
        for b in blocks {
            assert_eq!(b.len(), config.block_size, "block size mismatch");
        }

        let (layer0, mut positions) = TreeLayer::setup(blocks, config.bucket_size, make(0), rng);
        let mut layers = vec![layer0];

        while positions.len() > config.client_map_limit {
            let packed: Vec<Vec<u8>> = positions
                .chunks(config.pack)
                .map(|chunk| {
                    let mut block = vec![0u8; LEAF_BYTES * config.pack];
                    for (i, &leaf) in chunk.iter().enumerate() {
                        block[i * LEAF_BYTES..(i + 1) * LEAF_BYTES]
                            .copy_from_slice(&(leaf as u32).to_le_bytes());
                    }
                    block
                })
                .collect();
            let (layer, next_positions) =
                TreeLayer::setup(&packed, config.bucket_size, make(layers.len()), rng);
            layers.push(layer);
            positions = next_positions;
        }

        Self { config, layers, client_map: positions }
    }

    /// Number of recursion levels (1 data layer + position-map layers).
    pub fn levels(&self) -> usize {
        self.layers.len()
    }

    /// Entries the client holds (top position map) — the `O(1)`-ish client
    /// state that the recursion buys.
    pub fn client_map_len(&self) -> usize {
        self.client_map.len()
    }

    /// Round trips per access: 2 per layer.
    pub fn round_trips_per_access(&self) -> usize {
        2 * self.layers.len()
    }

    /// Aggregated cost counters over all layers' servers.
    pub fn total_stats(&self) -> dps_server::CostStats {
        self.layers
            .iter()
            .fold(dps_server::CostStats::default(), |acc, l| acc.plus(&l.server.stats()))
    }

    fn read_label(block: &[u8], offset: usize) -> usize {
        u32::from_le_bytes(
            block[offset * LEAF_BYTES..(offset + 1) * LEAF_BYTES]
                .try_into()
                .expect("label slot"),
        ) as usize
    }

    fn write_label(block: &mut [u8], offset: usize, leaf: usize) {
        block[offset * LEAF_BYTES..(offset + 1) * LEAF_BYTES]
            .copy_from_slice(&(leaf as u32).to_le_bytes());
    }

    /// Reads block `index`.
    pub fn read(&mut self, index: usize, rng: &mut ChaChaRng) -> Result<Vec<u8>, OramError> {
        self.access(index, None, rng)
    }

    /// Overwrites block `index`, returning the previous value.
    pub fn write(
        &mut self,
        index: usize,
        value: Vec<u8>,
        rng: &mut ChaChaRng,
    ) -> Result<Vec<u8>, OramError> {
        if value.len() != self.config.block_size {
            return Err(OramError::BadBlockSize {
                got: value.len(),
                expected: self.config.block_size,
            });
        }
        self.access(index, Some(value), rng)
    }

    fn access(
        &mut self,
        index: usize,
        new_value: Option<Vec<u8>>,
        rng: &mut ChaChaRng,
    ) -> Result<Vec<u8>, OramError> {
        if index >= self.config.n {
            return Err(OramError::IndexOutOfRange { index, n: self.config.n });
        }

        // indices[j] = block of layer j on the lookup chain.
        let levels = self.layers.len();
        let mut indices = Vec::with_capacity(levels);
        let mut idx = index;
        for _ in 0..levels {
            indices.push(idx);
            idx /= self.config.pack;
        }

        // Top of the chain: the client-held map covers the last layer.
        let top = levels - 1;
        let top_idx = indices[top];
        let mut old_leaf = self.client_map[top_idx];
        let mut new_leaf = rng.gen_index(self.layers[top].num_leaves());
        self.client_map[top_idx] = new_leaf;

        // Walk the position-map layers top-down, extracting the child's
        // old leaf and installing its replacement.
        for j in (1..levels).rev() {
            let child_offset = indices[j - 1] % self.config.pack;
            let child_new_leaf = rng.gen_index(self.layers[j - 1].num_leaves());
            let (head, tail) = self.layers.split_at_mut(j);
            let _ = head; // layer j accessed below; split only for borrow clarity
            let old_block = tail[0].access(
                indices[j],
                old_leaf,
                new_leaf,
                |block| Self::write_label(block, child_offset, child_new_leaf),
                rng,
            )?;
            old_leaf = Self::read_label(&old_block, child_offset);
            new_leaf = child_new_leaf;
        }

        // Finally the data layer.
        self.layers[0].access(
            index,
            old_leaf,
            new_leaf,
            |block| {
                if let Some(v) = new_value {
                    *block = v;
                }
            },
            rng,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: usize, pack: usize, limit: usize, seed: u64) -> (RecursivePathOram, ChaChaRng) {
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let blocks: Vec<Vec<u8>> = (0..n).map(|i| vec![(i % 251) as u8; 16]).collect();
        let config = RecursiveOramConfig {
            n,
            block_size: 16,
            bucket_size: 4,
            pack,
            client_map_limit: limit,
        };
        let oram = RecursivePathOram::setup(config, &blocks, &mut rng);
        (oram, rng)
    }

    #[test]
    fn recursion_depth_matches_pack() {
        // n = 256, pack = 4, limit = 4: maps of 256 -> 64 -> 16 -> 4.
        let (oram, _) = build(256, 4, 4, 1);
        assert_eq!(oram.levels(), 4);
        assert!(oram.client_map_len() <= 4);
        assert_eq!(oram.round_trips_per_access(), 8);
    }

    #[test]
    fn no_recursion_when_map_fits() {
        let (oram, _) = build(16, 4, 64, 2);
        assert_eq!(oram.levels(), 1);
        assert_eq!(oram.round_trips_per_access(), 2);
    }

    #[test]
    fn read_returns_initial_contents() {
        let (mut oram, mut rng) = build(128, 8, 8, 3);
        for i in [0usize, 17, 127] {
            assert_eq!(oram.read(i, &mut rng).unwrap(), vec![(i % 251) as u8; 16]);
        }
    }

    #[test]
    fn write_then_read() {
        let (mut oram, mut rng) = build(64, 4, 8, 4);
        let old = oram.write(9, vec![0xEE; 16], &mut rng).unwrap();
        assert_eq!(old, vec![9u8; 16]);
        assert_eq!(oram.read(9, &mut rng).unwrap(), vec![0xEE; 16]);
    }

    #[test]
    fn random_workload_matches_reference() {
        let (mut oram, mut rng) = build(60, 4, 8, 5);
        let mut reference: Vec<Vec<u8>> = (0..60).map(|i| vec![(i % 251) as u8; 16]).collect();
        for step in 0..400 {
            let i = rng.gen_index(60);
            if rng.gen_bool(0.5) {
                let v = vec![(step % 256) as u8; 16];
                oram.write(i, v.clone(), &mut rng).unwrap();
                reference[i] = v;
            } else {
                assert_eq!(oram.read(i, &mut rng).unwrap(), reference[i], "step {step}");
            }
        }
    }

    #[test]
    fn round_trips_are_counted_per_layer() {
        let (mut oram, mut rng) = build(256, 4, 4, 6);
        let before = oram.total_stats();
        oram.read(0, &mut rng).unwrap();
        let diff = oram.total_stats().since(&before);
        assert_eq!(diff.round_trips, oram.round_trips_per_access() as u64);
    }

    #[test]
    fn deeper_recursion_costs_more_round_trips() {
        let (shallow, _) = build(1 << 10, 256, 256, 7);
        let (deep, _) = build(1 << 10, 4, 4, 8);
        assert!(deep.round_trips_per_access() > shallow.round_trips_per_access());
    }

    #[test]
    fn out_of_range_and_bad_size_rejected() {
        let (mut oram, mut rng) = build(32, 4, 8, 9);
        assert!(matches!(
            oram.read(32, &mut rng),
            Err(OramError::IndexOutOfRange { index: 32, n: 32 })
        ));
        assert!(matches!(
            oram.write(0, vec![1u8; 3], &mut rng),
            Err(OramError::BadBlockSize { got: 3, expected: 16 })
        ));
    }

    #[test]
    fn long_workload_with_deep_recursion_stays_correct() {
        let (mut oram, mut rng) = build(300, 4, 4, 10);
        for round in 0..3 {
            for i in 0..300 {
                let expected = if round == 0 {
                    vec![(i % 251) as u8; 16]
                } else {
                    vec![((i + round - 1) % 256) as u8; 16]
                };
                assert_eq!(oram.read(i, &mut rng).unwrap(), expected, "round {round}, i {i}");
                oram.write(i, vec![((i + round) % 256) as u8; 16], &mut rng)
                    .unwrap();
            }
        }
    }
}
