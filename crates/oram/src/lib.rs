//! Oblivious RAM baselines.
//!
//! The paper positions its DP-RAM against ORAM: obliviousness costs
//! `Ω(log n)` overhead (Goldreich–Ostrovsky, Larsen–Nielsen) while DP-RAM
//! achieves `O(1)` at `ε = Θ(log n)`. To *measure* that separation we need a
//! faithful ORAM implementation, not a formula:
//!
//! * [`path_oram`] — Path ORAM (Stefanov et al., CCS'13), the scheme the
//!   paper's own DP-RAM comparison (\[50\] Root ORAM) starts from: binary
//!   tree of Z-slot buckets, client stash, client position map. Bandwidth is
//!   `2·Z·(L+1)` blocks per access over 2 round trips; with the position map
//!   stored recursively (as required for small-client deployments, see
//!   [`path_oram::PathOram::recursive_round_trips`]) the round trips grow to
//!   `Θ(log n)`.
//! * [`recursive`] — Path ORAM with the position map stored recursively in
//!   smaller ORAMs: the small-client deployment whose `Θ(log n)` round
//!   trips the paper's comparison against \[50\] is about.
//! * [`square_root`] — Goldreich's square-root ORAM: the classic `Θ(√n)`
//!   point between DP-RAM's `O(1)` and the linear scan.
//! * [`linear`] — the trivial linear-scan ORAM: perfectly oblivious,
//!   touching all `n` cells per access. The other end of the spectrum.
//! * [`kvs`] — an ORAM-backed key-value store: the "oblivious key-value
//!   storage built from ORAMs" that Theorem 7.5's `O(log log n)` overhead is
//!   exponentially better than.
//!
//! All ORAMs are generic over `dps_server::Storage` and run unmodified
//! against a network server via `dps_net::RemoteServer`; round-trip
//! counts (the measure the recursive comparison is about) then map
//! one-to-one onto framed wire exchanges.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kvs;
pub mod linear;
pub mod path_oram;
pub mod recursive;
pub mod slots;
pub mod square_root;

pub use kvs::OramKvs;
pub use linear::LinearOram;
pub use path_oram::{PathOram, PathOramConfig};
pub use recursive::{RecursiveOramConfig, RecursivePathOram};
pub use square_root::SquareRootOram;
