//! Re-export of the shared fixed-size slot encoding.
//!
//! Bucket cells (ORAM) and tree-node cells (DP-KVS) share one encoding,
//! which lives in [`dps_server::cells`]; this alias keeps older paths
//! (`dps_oram::slots`) working.

pub use dps_server::cells::*;
