//! Property-based tests for the ORAM baselines.

use dps_crypto::ChaChaRng;
use dps_oram::{
    OramKvs, PathOram, PathOramConfig, RecursiveOramConfig, RecursivePathOram, SquareRootOram,
};
use dps_server::SimServer;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Path ORAM matches a plain array under arbitrary programs, for
    /// arbitrary (small) n including non-powers of two.
    #[test]
    fn path_oram_matches_reference(
        n in 1usize..48,
        ops in proptest::collection::vec((any::<u16>(), any::<bool>(), any::<u8>()), 1..60),
        seed in any::<u64>(),
    ) {
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let blocks: Vec<Vec<u8>> = (0..n).map(|i| vec![(i % 251) as u8; 8]).collect();
        let mut reference = blocks.clone();
        let mut oram = PathOram::setup(
            PathOramConfig::recommended(n, 8),
            &blocks,
            SimServer::new(),
            &mut rng,
        );
        for (step, (raw_i, is_write, byte)) in ops.into_iter().enumerate() {
            let i = raw_i as usize % n;
            if is_write {
                let value = vec![byte; 8];
                oram.write(i, value.clone(), &mut rng).unwrap();
                reference[i] = value;
            } else {
                prop_assert_eq!(oram.read(i, &mut rng).unwrap(), reference[i].clone(), "step {}", step);
            }
        }
    }

    /// ORAM-KVS matches a HashMap under arbitrary programs.
    #[test]
    fn oram_kvs_matches_reference(
        ops in proptest::collection::vec((0u8..3, 0u64..20), 1..50),
        seed in any::<u64>(),
    ) {
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let mut kvs = OramKvs::new(32, 4, &mut rng);
        let mut model: std::collections::HashMap<u64, Vec<u8>> = std::collections::HashMap::new();
        for (step, (kind, key)) in ops.into_iter().enumerate() {
            match kind {
                0 => {
                    let value = vec![(step % 256) as u8; 4];
                    kvs.put(key, value.clone(), &mut rng).unwrap();
                    model.insert(key, value);
                }
                1 => {
                    prop_assert_eq!(kvs.remove(key, &mut rng).unwrap(), model.remove(&key), "step {}", step);
                }
                _ => {
                    prop_assert_eq!(kvs.get(key, &mut rng).unwrap(), model.get(&key).cloned(), "step {}", step);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Square-root ORAM matches a plain array under arbitrary programs,
    /// crossing epoch boundaries (reshuffles) arbitrarily.
    #[test]
    fn square_root_oram_matches_reference(
        n in 1usize..40,
        ops in proptest::collection::vec((any::<u16>(), any::<bool>(), any::<u8>()), 1..80),
        seed in any::<u64>(),
    ) {
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let blocks: Vec<Vec<u8>> = (0..n).map(|i| vec![(i % 251) as u8; 8]).collect();
        let mut reference = blocks.clone();
        let mut oram = SquareRootOram::setup(&blocks, SimServer::new(), &mut rng);
        for (step, (raw_i, is_write, byte)) in ops.into_iter().enumerate() {
            let i = raw_i as usize % n;
            if is_write {
                let value = vec![byte; 8];
                oram.write(i, value.clone(), &mut rng).unwrap();
                reference[i] = value;
            } else {
                prop_assert_eq!(oram.read(i, &mut rng).unwrap(), reference[i].clone(), "step {}", step);
            }
        }
    }

    /// Recursive Path ORAM matches a plain array for arbitrary n, pack and
    /// client-map limits (recursion depths 1..4).
    #[test]
    fn recursive_path_oram_matches_reference(
        n in 1usize..48,
        pack in 2usize..6,
        limit in 1usize..8,
        ops in proptest::collection::vec((any::<u16>(), any::<bool>(), any::<u8>()), 1..40),
        seed in any::<u64>(),
    ) {
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let blocks: Vec<Vec<u8>> = (0..n).map(|i| vec![(i % 251) as u8; 8]).collect();
        let mut reference = blocks.clone();
        let config = RecursiveOramConfig {
            n,
            block_size: 8,
            bucket_size: 4,
            pack,
            client_map_limit: limit,
        };
        let mut oram = RecursivePathOram::setup(config, &blocks, &mut rng);
        prop_assert!(oram.client_map_len() <= limit.max(1));
        for (step, (raw_i, is_write, byte)) in ops.into_iter().enumerate() {
            let i = raw_i as usize % n;
            if is_write {
                let value = vec![byte; 8];
                oram.write(i, value.clone(), &mut rng).unwrap();
                reference[i] = value;
            } else {
                prop_assert_eq!(oram.read(i, &mut rng).unwrap(), reference[i].clone(), "step {}", step);
            }
        }
    }

    /// Cost invariant: every recursive access uses exactly 2 round trips
    /// per layer, independent of the access pattern.
    #[test]
    fn recursive_round_trip_invariant(
        accesses in proptest::collection::vec(any::<u16>(), 1..20),
        seed in any::<u64>(),
    ) {
        let n = 64;
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let blocks: Vec<Vec<u8>> = (0..n).map(|_| vec![0u8; 8]).collect();
        let mut oram = RecursivePathOram::setup(
            RecursiveOramConfig { n, block_size: 8, bucket_size: 4, pack: 4, client_map_limit: 4 },
            &blocks,
            &mut rng,
        );
        let expected = oram.round_trips_per_access() as u64;
        for raw_i in accesses {
            let before = oram.total_stats();
            oram.read(raw_i as usize % n, &mut rng).unwrap();
            prop_assert_eq!(oram.total_stats().since(&before).round_trips, expected);
        }
    }
}
