//! D-server XOR PIR (the CGKS \[19\] replication scheme, generalized).
//!
//! The 2-server XOR trick extends to any number of servers `D ≥ 2`: the
//! client samples `D − 1` independent uniform subsets `S_1, …, S_{D−1}` of
//! `[n]` and sets `S_D = S_1 Δ ⋯ Δ S_{D−1} Δ {i}`. Each server XORs the
//! records in its subset; XORing all `D` answers yields record `i`. Any
//! coalition of up to `D − 1` servers sees independent uniform subsets, so
//! the scheme is information-theoretically private against `D − 1`
//! colluding servers — strictly stronger collusion resistance than the
//! 2-server scheme, at the price of `D` replicas and `Θ(n)` total server
//! work per query.
//!
//! This is the fully-oblivious multi-server baseline that the Appendix C
//! lower bound (Theorem C.1) and the multi-server DP-IR construction trade
//! against: DP-IR drops the per-server work to `O(n/e^ε)` by accepting
//! `ε`-DP instead of obliviousness.

use dps_crypto::ChaChaRng;
use dps_server::{ReplicatedServers, ServerError, SimServer, Storage};

/// A `D`-server XOR PIR client.
#[derive(Debug)]
pub struct MultiServerXorPir<S: Storage = SimServer> {
    servers: ReplicatedServers<S>,
    n: usize,
    /// Reusable per-server answer scratch for the zero-alloc XOR path.
    answer_scratch: Vec<u8>,
}

impl MultiServerXorPir {
    /// Replicates the (public, plaintext) database onto `d` in-process
    /// [`SimServer`]s.
    ///
    /// # Panics
    /// Panics if `d < 2`, `blocks` is empty, or block sizes differ.
    pub fn setup(d: usize, blocks: &[Vec<u8>]) -> Self {
        Self::setup_on(d, blocks)
    }
}

impl<S: Storage> MultiServerXorPir<S> {
    /// [`MultiServerXorPir::setup`] over default-constructed backends of
    /// type `S`. Use [`MultiServerXorPir::setup_with`] to configure each
    /// server.
    ///
    /// # Panics
    /// Panics if `d < 2`, `blocks` is empty, or block sizes differ.
    pub fn setup_on(d: usize, blocks: &[Vec<u8>]) -> Self
    where
        S: Default,
    {
        Self::setup_with(d, blocks, |_| S::default())
    }

    /// [`MultiServerXorPir::setup`] with a caller-supplied server factory
    /// (`make(i)` builds server `i`).
    ///
    /// # Panics
    /// Panics if `d < 2`, `blocks` is empty, or block sizes differ.
    pub fn setup_with(d: usize, blocks: &[Vec<u8>], make: impl FnMut(usize) -> S) -> Self {
        assert!(d >= 2, "XOR PIR needs at least two servers");
        assert!(!blocks.is_empty(), "need at least one block");
        let size = blocks[0].len();
        assert!(blocks.iter().all(|b| b.len() == size), "uniform block size required");
        Self {
            servers: ReplicatedServers::replicate_with(d, blocks, make),
            n: blocks.len(),
            answer_scratch: Vec::new(),
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false (setup requires at least one record).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of servers `D`.
    pub fn num_servers(&self) -> usize {
        self.servers.count()
    }

    /// Total cost across all servers.
    pub fn total_stats(&self) -> dps_server::CostStats {
        self.servers.total_stats()
    }

    /// Access to the underlying server pool (transcript control).
    pub fn servers_mut(&mut self) -> &mut ReplicatedServers<S> {
        &mut self.servers
    }

    /// Retrieves record `index`.
    pub fn query(&mut self, index: usize, rng: &mut ChaChaRng) -> Result<Vec<u8>, ServerError> {
        assert!(index < self.n, "index out of range");
        let d = self.servers.count();

        // Membership bitmaps: servers 0..D-1 get independent uniform
        // subsets; the last is their symmetric difference with {index}.
        let mut last = vec![false; self.n];
        last[index] = true;
        let mut subsets: Vec<Vec<usize>> = Vec::with_capacity(d);
        for _ in 0..d - 1 {
            let mut subset = Vec::new();
            for (j, flag) in last.iter_mut().enumerate() {
                if rng.gen_bool(0.5) {
                    subset.push(j);
                    *flag = !*flag;
                }
            }
            subsets.push(subset);
        }
        subsets.push(
            last.iter()
                .enumerate()
                .filter_map(|(j, &m)| m.then_some(j))
                .collect(),
        );

        let mut out = Vec::new();
        for (server, subset) in subsets.iter().enumerate() {
            self.servers
                .server_mut(server)
                .xor_cells_into(subset, &mut self.answer_scratch)?;
            if self.answer_scratch.len() > out.len() {
                out.resize(self.answer_scratch.len(), 0);
            }
            for (x, y) in out.iter_mut().zip(self.answer_scratch.iter()) {
                *x ^= y;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(d: usize, n: usize) -> MultiServerXorPir {
        let blocks: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8, (i * 13) as u8]).collect();
        MultiServerXorPir::setup(d, &blocks)
    }

    #[test]
    fn returns_requested_record_for_various_d() {
        for d in [2usize, 3, 4, 7] {
            let mut pir = build(d, 24);
            let mut rng = ChaChaRng::seed_from_u64(d as u64);
            for i in [0usize, 11, 23] {
                assert_eq!(
                    pir.query(i, &mut rng).unwrap(),
                    vec![i as u8, (i * 13) as u8],
                    "d = {d}, i = {i}"
                );
            }
        }
    }

    #[test]
    fn matches_two_server_special_case() {
        // d = 2 must behave like the dedicated XorPir: correct retrievals
        // and ~n/2 ops per server.
        let mut pir = build(2, 64);
        let mut rng = ChaChaRng::seed_from_u64(42);
        let before = pir.total_stats();
        for _ in 0..50 {
            pir.query(5, &mut rng).unwrap();
        }
        let per_query = pir.total_stats().since(&before).computed as f64 / 50.0;
        assert!((per_query - 64.0).abs() < 8.0, "expected ~n ops total, got {per_query}");
    }

    /// Any single server's subset is marginally uniform: each record
    /// appears with frequency ~1/2 regardless of the query — including at
    /// the last (derived) server.
    #[test]
    fn every_server_sees_uniform_subsets() {
        let d = 3;
        let n = 12;
        let mut pir = build(d, n);
        let mut rng = ChaChaRng::seed_from_u64(7);
        let trials = 3000;
        let mut inclusion = vec![vec![0u32; n]; d];
        for _ in 0..trials {
            pir.servers_mut().start_recording_all();
            pir.query(4, &mut rng).unwrap();
            let transcripts = pir.servers_mut().take_transcripts();
            for (server, t) in transcripts.iter().enumerate() {
                for addr in t.computed_addresses() {
                    inclusion[server][addr] += 1;
                }
            }
        }
        for (server, counts) in inclusion.iter().enumerate() {
            for (record, &c) in counts.iter().enumerate() {
                let f = f64::from(c) / f64::from(trials);
                assert!((f - 0.5).abs() < 0.05, "server {server}, record {record}: inclusion {f}");
            }
        }
    }

    /// The subsets XOR to exactly {index}: correctness of the sharing.
    #[test]
    fn subsets_xor_to_singleton() {
        let mut pir = build(4, 16);
        let mut rng = ChaChaRng::seed_from_u64(9);
        pir.servers_mut().start_recording_all();
        pir.query(7, &mut rng).unwrap();
        let transcripts = pir.servers_mut().take_transcripts();
        let mut parity = [0u32; 16];
        for t in &transcripts {
            for addr in t.computed_addresses() {
                parity[addr] ^= 1;
            }
        }
        let odd: Vec<usize> = (0..16).filter(|&i| parity[i] == 1).collect();
        assert_eq!(odd, vec![7]);
    }

    #[test]
    fn total_work_grows_with_d() {
        let mut rng = ChaChaRng::seed_from_u64(11);
        let mut work = Vec::new();
        for d in [2usize, 4, 8] {
            let mut pir = build(d, 32);
            let before = pir.total_stats();
            for _ in 0..30 {
                pir.query(0, &mut rng).unwrap();
            }
            work.push(pir.total_stats().since(&before).computed as f64 / 30.0);
        }
        assert!(work[1] > work[0] && work[2] > work[1], "work must grow with D: {work:?}");
    }

    #[test]
    #[should_panic(expected = "at least two servers")]
    fn one_server_rejected() {
        let _ = build(1, 4);
    }
}
