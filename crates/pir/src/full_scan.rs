//! Trivial single-server PIR: download the whole database.
//!
//! Both client and server are stateless; the transcript is the same for
//! every query, so this is perfectly oblivious — and maximally expensive.
//! It is the errorless baseline of experiment E1 (Theorem 3.3 says no
//! errorless DP-IR can asymptotically beat it in the balls-and-bins model).

use dps_server::{ServerError, SimServer, Storage};

/// A stateless full-download PIR client bound to a server.
#[derive(Debug)]
pub struct FullScanPir<S: Storage = SimServer> {
    server: S,
    n: usize,
    /// Cached `[0, n)` address list: the scan is the same every query, so
    /// it is built once at setup instead of reallocated per query.
    addrs: Vec<usize>,
}

impl<S: Storage> FullScanPir<S> {
    /// Stores the (public, plaintext) database on the server.
    pub fn setup(blocks: &[Vec<u8>], mut server: S) -> Self {
        assert!(!blocks.is_empty(), "need at least one block");
        server.init(blocks.to_vec());
        let n = blocks.len();
        Self { server, n, addrs: (0..n).collect() }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the PIR holds no records. Derived from the actual record
    /// count rather than hard-coded (setup currently guarantees `n > 0`,
    /// but this method must not silently lie if that invariant changes).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Server cost counters.
    pub fn server_stats(&self) -> dps_server::CostStats {
        self.server.stats()
    }

    /// Mutable access to the underlying server (transcript control).
    pub fn server_mut(&mut self) -> &mut S {
        &mut self.server
    }

    /// Retrieves record `index` by downloading all `n` records. The scan
    /// uses the zero-copy read path: only the requested record is copied
    /// out of the server arena; the other `n − 1` cells are never cloned.
    #[inline]
    pub fn query(&mut self, index: usize) -> Result<Vec<u8>, ServerError> {
        assert!(index < self.n, "index out of range");
        let mut out = Vec::new();
        self.server.read_batch_with(&self.addrs, |i, cell| {
            if i == index {
                out.extend_from_slice(cell);
            }
        })?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: usize) -> FullScanPir {
        let blocks: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 4]).collect();
        FullScanPir::setup(&blocks, SimServer::new())
    }

    #[test]
    fn returns_requested_record() {
        let mut pir = build(16);
        for i in [0usize, 7, 15] {
            assert_eq!(pir.query(i).unwrap(), vec![i as u8; 4]);
        }
    }

    #[test]
    fn touches_all_records() {
        let mut pir = build(32);
        let before = pir.server_stats();
        pir.query(3).unwrap();
        assert_eq!(pir.server_stats().since(&before).downloads, 32);
    }

    #[test]
    fn transcript_is_query_independent() {
        let mut a = build(8);
        a.server_mut().start_recording();
        a.query(0).unwrap();
        let view_a = a.server_mut().take_transcript().canonical_encoding();

        let mut b = build(8);
        b.server_mut().start_recording();
        b.query(7).unwrap();
        let view_b = b.server_mut().take_transcript().canonical_encoding();
        assert_eq!(view_a, view_b, "full scan must be perfectly oblivious");
    }
}
