//! Trivial single-server PIR: download the whole database.
//!
//! Both client and server are stateless; the transcript is the same for
//! every query, so this is perfectly oblivious — and maximally expensive.
//! It is the errorless baseline of experiment E1 (Theorem 3.3 says no
//! errorless DP-IR can asymptotically beat it in the balls-and-bins model).

use dps_server::{ServerError, SimServer, Storage, WorkerPool};

/// A stateless full-download PIR client bound to a server.
///
/// With a non-sequential [`WorkerPool`] ([`FullScanPir::with_pool`]) and
/// uniform record sizes, each query downloads the database through the
/// bulk [`Storage::read_batch_strided`] path, which storage backends fan
/// across their shards/threads (a [`dps_server::ShardedServer`] copies
/// per-shard in parallel; a [`SimServer`] stays sequential). Stats and
/// transcript are identical either way; the answer is always the same.
#[derive(Debug)]
pub struct FullScanPir<S: Storage = SimServer> {
    server: S,
    n: usize,
    /// Cached `[0, n)` address list: the scan is the same every query, so
    /// it is built once at setup instead of reallocated per query.
    addrs: Vec<usize>,
    /// Worker pool gating the bulk strided scan (sequential default).
    pool: WorkerPool,
    /// Uniform record length, when the database has one (required for the
    /// strided bulk path).
    record_len: Option<usize>,
    /// Reusable flat scratch for the bulk strided scan.
    scan_scratch: Vec<u8>,
}

impl<S: Storage> FullScanPir<S> {
    /// Stores the (public, plaintext) database on the server.
    pub fn setup(blocks: &[Vec<u8>], mut server: S) -> Self {
        assert!(!blocks.is_empty(), "need at least one block");
        let first_len = blocks[0].len();
        let record_len = blocks.iter().all(|b| b.len() == first_len).then_some(first_len);
        server.init(blocks.to_vec());
        let n = blocks.len();
        Self {
            server,
            n,
            addrs: (0..n).collect(),
            pool: WorkerPool::single(),
            record_len,
            scan_scratch: Vec::new(),
        }
    }

    /// Sets the worker pool. A non-sequential pool opts queries into the
    /// bulk strided scan (requires uniform record sizes; ragged databases
    /// keep the per-cell path). The pool acts as the opt-in switch — the
    /// parallel data movement itself happens inside storage backends with
    /// their own fan-out (pair this with a
    /// [`dps_server::ShardedServer::with_pool`] backend); on a plain
    /// [`SimServer`] the bulk path only adds copying and is not worth
    /// enabling.
    pub fn with_pool(mut self, pool: WorkerPool) -> Self {
        self.pool = pool;
        self
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the PIR holds no records. Derived from the actual record
    /// count rather than hard-coded (setup currently guarantees `n > 0`,
    /// but this method must not silently lie if that invariant changes).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Server cost counters.
    pub fn server_stats(&self) -> dps_server::CostStats {
        self.server.stats()
    }

    /// Mutable access to the underlying server (transcript control).
    pub fn server_mut(&mut self) -> &mut S {
        &mut self.server
    }

    /// Retrieves record `index` by downloading all `n` records. The
    /// default scan uses the zero-copy read path: only the requested
    /// record is copied out of the server arena; the other `n − 1` cells
    /// are never cloned. With a non-sequential pool (and uniform records)
    /// the scan instead bulk-copies through the backend's fanned
    /// [`Storage::read_batch_strided`].
    #[inline]
    pub fn query(&mut self, index: usize) -> Result<Vec<u8>, ServerError> {
        assert!(index < self.n, "index out of range");
        // The bulk path assumes the records still have their uniform
        // setup-time length — PIR databases are static, but `server_mut`
        // could have rewritten a cell, so verify cheaply and fall back to
        // the per-cell path (which handles any lengths) when in doubt.
        if let (false, Some(len)) = (self.pool.is_sequential(), self.record_len) {
            // Shrunk cells lower stored_bytes; grown cells raise the arena
            // stride — either mismatch routes to the fallback.
            if self.server.stored_bytes() == (self.n * len) as u64
                && self.server.cell_stride() == len
            {
                // The guard above means every cell is exactly `len` bytes,
                // so the strided read overwrites the whole scratch — no
                // zeroing needed on reuse.
                self.scan_scratch.resize(self.n * len, 0);
                self.server
                    .read_batch_strided(&self.addrs, &mut self.scan_scratch)?;
                return Ok(self.scan_scratch[index * len..(index + 1) * len].to_vec());
            }
        }
        let mut out = Vec::new();
        self.server.read_batch_with(&self.addrs, |i, cell| {
            if i == index {
                out.extend_from_slice(cell);
            }
        })?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: usize) -> FullScanPir {
        let blocks: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 4]).collect();
        FullScanPir::setup(&blocks, SimServer::new())
    }

    #[test]
    fn returns_requested_record() {
        let mut pir = build(16);
        for i in [0usize, 7, 15] {
            assert_eq!(pir.query(i).unwrap(), vec![i as u8; 4]);
        }
    }

    #[test]
    fn touches_all_records() {
        let mut pir = build(32);
        let before = pir.server_stats();
        pir.query(3).unwrap();
        assert_eq!(pir.server_stats().since(&before).downloads, 32);
    }

    /// The pooled bulk scan returns the same records with the same stats
    /// and transcript as the default zero-copy path — on SimServer and on
    /// a ShardedServer whose own pool does the fanning.
    #[test]
    fn pooled_scan_matches_default() {
        let blocks: Vec<Vec<u8>> = (0..24).map(|i| vec![i as u8; 8]).collect();
        let mut reference = FullScanPir::setup(&blocks, SimServer::new());
        let mut pooled =
            FullScanPir::setup(&blocks, SimServer::new()).with_pool(WorkerPool::new(4));
        let mut sharded = FullScanPir::setup(
            &blocks,
            dps_server::ShardedServer::new(4).with_pool(WorkerPool::new(4)),
        )
        .with_pool(WorkerPool::new(4));
        for i in 0..24 {
            let want = reference.query(i).unwrap();
            assert_eq!(pooled.query(i).unwrap(), want, "record {i}");
            assert_eq!(sharded.query(i).unwrap(), want, "record {i} (sharded)");
        }
        assert_eq!(reference.server_stats(), pooled.server_stats());
        assert_eq!(reference.server_stats(), sharded.server_stats());
    }

    /// If a record is rewritten to a different length behind the client's
    /// back, the pooled bulk path detects the layout change and falls
    /// back to the per-cell path — answers stay identical to the default.
    #[test]
    fn pooled_scan_falls_back_on_mutated_record_lengths() {
        let blocks: Vec<Vec<u8>> = (0..8).map(|i| vec![i as u8; 6]).collect();
        let mut pooled =
            FullScanPir::setup(&blocks, SimServer::new()).with_pool(WorkerPool::new(4));
        // Shrink one record.
        pooled.server_mut().write(3, vec![9u8; 2]).unwrap();
        assert_eq!(pooled.query(3).unwrap(), vec![9u8; 2]);
        assert_eq!(pooled.query(5).unwrap(), vec![5u8; 6]);
        // Grow one record past the uniform length.
        pooled.server_mut().write(3, vec![8u8; 10]).unwrap();
        assert_eq!(pooled.query(3).unwrap(), vec![8u8; 10]);
        assert_eq!(pooled.query(7).unwrap(), vec![7u8; 6]);
    }

    #[test]
    fn transcript_is_query_independent() {
        let mut a = build(8);
        a.server_mut().start_recording();
        a.query(0).unwrap();
        let view_a = a.server_mut().take_transcript().canonical_encoding();

        let mut b = build(8);
        b.server_mut().start_recording();
        b.query(7).unwrap();
        let view_b = b.server_mut().take_transcript().canonical_encoding();
        assert_eq!(view_a, view_b, "full scan must be perfectly oblivious");
    }
}
