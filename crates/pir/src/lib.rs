//! Private information retrieval baselines.
//!
//! PIR is the stateless end of the paper's spectrum: the server must
//! "operate on" every record, because any record it skips is provably not
//! the one retrieved (and Theorem 3.3 extends this to *every* errorless
//! (ε,δ)-DP-IR: at least `(1-δ)·n` operations). These baselines realize
//! that `Θ(n)` cost so experiments can measure the separation from
//! erroring DP-IR:
//!
//! * [`full_scan`] — trivial single-server PIR: download everything.
//!   Perfectly oblivious, `n` operations, `n` blocks of bandwidth.
//! * [`xor_pir`] — 2-server XOR PIR (Chor, Goldreich, Kushilevitz, Sudan):
//!   information-theoretically private against each single server, `n`
//!   server operations total but only `O(1)` blocks of *download*
//!   bandwidth.
//! * [`cgks`] — the `D`-server generalization: private against any `D − 1`
//!   colluding servers, still `Θ(n)` total server work — the oblivious
//!   multi-server baseline Theorem C.1's DP relaxation escapes.
//!
//! The multi-server schemes take a per-replica server factory
//! (`setup_with`), so each replica can be its own `dps_net::RemoteServer`
//! connection — a genuine `D`-machine deployment shape, pinned equivalent
//! to the in-process one by the `dps_net` loopback suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cgks;
pub mod full_scan;
pub mod xor_pir;

pub use cgks::MultiServerXorPir;
pub use full_scan::FullScanPir;
pub use xor_pir::XorPir;
