//! 2-server XOR PIR (Chor, Goldreich, Kushilevitz, Sudan — FOCS 1995).
//!
//! The database is replicated on two non-colluding servers. To fetch record
//! `i` the client samples a uniform subset `S ⊆ [n]`, asks server 0 for the
//! XOR of `S` and server 1 for the XOR of `S Δ {i}`, and XORs the two
//! answers. Each server individually sees a uniformly random subset —
//! information-theoretic privacy — but must compute over ~`n/2` records,
//! which is exactly the `Θ(n)` server work the paper's multi-server DP-IR
//! relaxation (Appendix C) trades privacy to escape.

use dps_crypto::ChaChaRng;
use dps_server::{ReplicatedServers, ServerError, SimServer, Storage};

/// A 2-server XOR PIR client.
#[derive(Debug)]
pub struct XorPir<S: Storage = SimServer> {
    servers: ReplicatedServers<S>,
    n: usize,
    /// Reusable per-server answer scratch for the zero-alloc XOR path.
    answer_scratch: Vec<u8>,
}

impl XorPir {
    /// Replicates the (public, plaintext) database onto two in-process
    /// [`SimServer`]s.
    pub fn setup(blocks: &[Vec<u8>]) -> Self {
        Self::setup_on(blocks)
    }
}

impl<S: Storage> XorPir<S> {
    /// [`XorPir::setup`] over default-constructed backends of type `S`.
    /// Use [`XorPir::setup_with`] to configure each server.
    pub fn setup_on(blocks: &[Vec<u8>]) -> Self
    where
        S: Default,
    {
        Self::setup_with(blocks, |_| S::default())
    }

    /// [`XorPir::setup`] with a caller-supplied server factory (`make(i)`
    /// builds server `i`, e.g. a sharded server with a worker pool).
    pub fn setup_with(blocks: &[Vec<u8>], make: impl FnMut(usize) -> S) -> Self {
        assert!(!blocks.is_empty(), "need at least one block");
        let size = blocks[0].len();
        assert!(blocks.iter().all(|b| b.len() == size), "uniform block size required");
        Self {
            servers: ReplicatedServers::replicate_with(2, blocks, make),
            n: blocks.len(),
            answer_scratch: Vec::new(),
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false (setup requires at least one record).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Total cost across both servers.
    pub fn total_stats(&self) -> dps_server::CostStats {
        self.servers.total_stats()
    }

    /// Access to the underlying server pool (transcript control).
    pub fn servers_mut(&mut self) -> &mut ReplicatedServers<S> {
        &mut self.servers
    }

    /// Retrieves record `index`.
    pub fn query(&mut self, index: usize, rng: &mut ChaChaRng) -> Result<Vec<u8>, ServerError> {
        assert!(index < self.n, "index out of range");
        // Uniform subset S: include each record with probability 1/2.
        let s0: Vec<usize> = (0..self.n).filter(|_| rng.gen_bool(0.5)).collect();
        // S Δ {i} for server 1.
        let mut s1 = s0.clone();
        match s1.binary_search(&index) {
            Ok(pos) => {
                s1.remove(pos);
            }
            Err(pos) => s1.insert(pos, index),
        }
        // XOR the two answers through the reusable scratch; an empty subset
        // yields an empty answer, which XORs as all-zeroes.
        let mut out = Vec::new();
        for (server, subset) in [&s0, &s1].into_iter().enumerate() {
            self.servers
                .server_mut(server)
                .xor_cells_into(subset, &mut self.answer_scratch)?;
            if self.answer_scratch.len() > out.len() {
                out.resize(self.answer_scratch.len(), 0);
            }
            for (x, y) in out.iter_mut().zip(self.answer_scratch.iter()) {
                *x ^= y;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: usize) -> XorPir {
        let blocks: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8, (i * 7) as u8]).collect();
        XorPir::setup(&blocks)
    }

    #[test]
    fn returns_requested_record() {
        let mut pir = build(32);
        let mut rng = ChaChaRng::seed_from_u64(1);
        for i in 0..32 {
            assert_eq!(pir.query(i, &mut rng).unwrap(), vec![i as u8, (i * 7) as u8]);
        }
    }

    #[test]
    fn servers_each_see_random_subsets() {
        // Marginal inclusion frequency of every record at each server should
        // be ~1/2 regardless of the queried index.
        let mut pir = build(16);
        let mut rng = ChaChaRng::seed_from_u64(2);
        let trials = 2000;
        let mut inclusion = [0u32; 16];
        for _ in 0..trials {
            pir.servers_mut().start_recording_all();
            pir.query(3, &mut rng).unwrap();
            let transcripts = pir.servers_mut().take_transcripts();
            for addr in transcripts[0].downloaded_addresses() {
                inclusion[addr] += 1;
            }
        }
        for (i, &c) in inclusion.iter().enumerate() {
            let f = c as f64 / trials as f64;
            assert!((f - 0.5).abs() < 0.06, "record {i} inclusion {f}");
        }
    }

    #[test]
    fn total_work_is_linear() {
        let mut pir = build(64);
        let mut rng = ChaChaRng::seed_from_u64(3);
        let before = pir.total_stats();
        for _ in 0..20 {
            pir.query(0, &mut rng).unwrap();
        }
        let diff = pir.total_stats().since(&before);
        let per_query = diff.computed as f64 / 20.0;
        assert!(
            (per_query - 64.0).abs() < 10.0,
            "expected ~n = 64 ops/query, got {per_query}"
        );
    }
}
