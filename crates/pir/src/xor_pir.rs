//! 2-server XOR PIR (Chor, Goldreich, Kushilevitz, Sudan — FOCS 1995).
//!
//! The database is replicated on two non-colluding servers. To fetch record
//! `i` the client samples a uniform subset `S ⊆ [n]`, asks server 0 for the
//! XOR of `S` and server 1 for the XOR of `S Δ {i}`, and XORs the two
//! answers. Each server individually sees a uniformly random subset —
//! information-theoretic privacy — but must compute over ~`n/2` records,
//! which is exactly the `Θ(n)` server work the paper's multi-server DP-IR
//! relaxation (Appendix C) trades privacy to escape.

use dps_crypto::ChaChaRng;
use dps_server::pool::Task;
use dps_server::{ReplicatedServers, ServerError, SimServer, Storage, WorkerPool};

/// A 2-server XOR PIR client.
///
/// With a non-sequential [`WorkerPool`] ([`XorPir::with_pool`]) the two
/// replicas' `Θ(n)` XOR scans run concurrently on separate threads — the
/// deployment reality, where the servers are independent machines. The
/// answers are combined in fixed server order, so results, per-server
/// stats and transcripts are identical to the sequential default.
#[derive(Debug)]
pub struct XorPir<S: Storage = SimServer> {
    servers: ReplicatedServers<S>,
    n: usize,
    /// Worker pool for the two-server concurrent scan (sequential default).
    pool: WorkerPool,
    /// Reusable per-server answer scratch for the zero-alloc XOR path.
    answer_scratch: Vec<u8>,
    /// Second answer scratch so concurrent scans write disjoint buffers.
    answer_scratch2: Vec<u8>,
}

impl XorPir {
    /// Replicates the (public, plaintext) database onto two in-process
    /// [`SimServer`]s.
    pub fn setup(blocks: &[Vec<u8>]) -> Self {
        Self::setup_on(blocks)
    }
}

impl<S: Storage> XorPir<S> {
    /// [`XorPir::setup`] over default-constructed backends of type `S`.
    /// Use [`XorPir::setup_with`] to configure each server.
    pub fn setup_on(blocks: &[Vec<u8>]) -> Self
    where
        S: Default,
    {
        Self::setup_with(blocks, |_| S::default())
    }

    /// [`XorPir::setup`] with a caller-supplied server factory (`make(i)`
    /// builds server `i`, e.g. a sharded server with a worker pool).
    pub fn setup_with(blocks: &[Vec<u8>], make: impl FnMut(usize) -> S) -> Self {
        assert!(!blocks.is_empty(), "need at least one block");
        let size = blocks[0].len();
        assert!(blocks.iter().all(|b| b.len() == size), "uniform block size required");
        Self {
            servers: ReplicatedServers::replicate_with(2, blocks, make),
            n: blocks.len(),
            pool: WorkerPool::single(),
            answer_scratch: Vec::new(),
            answer_scratch2: Vec::new(),
        }
    }

    /// Sets the worker pool; with 2 or more threads, each query scans the
    /// two replicas concurrently. Results are identical for any width.
    pub fn with_pool(mut self, pool: WorkerPool) -> Self {
        self.pool = pool;
        self
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false (setup requires at least one record).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Total cost across both servers.
    pub fn total_stats(&self) -> dps_server::CostStats {
        self.servers.total_stats()
    }

    /// Access to the underlying server pool (transcript control).
    pub fn servers_mut(&mut self) -> &mut ReplicatedServers<S> {
        &mut self.servers
    }

    /// Retrieves record `index`.
    pub fn query(&mut self, index: usize, rng: &mut ChaChaRng) -> Result<Vec<u8>, ServerError> {
        assert!(index < self.n, "index out of range");
        // Uniform subset S: include each record with probability 1/2.
        let s0: Vec<usize> = (0..self.n).filter(|_| rng.gen_bool(0.5)).collect();
        // S Δ {i} for server 1.
        let mut s1 = s0.clone();
        match s1.binary_search(&index) {
            Ok(pos) => {
                s1.remove(pos);
            }
            Err(pos) => s1.insert(pos, index),
        }
        // Compute both servers' answers — concurrently when the pool has
        // threads to spare, sequentially otherwise. Both scans always run
        // to completion and errors propagate in server order afterwards,
        // so per-server stats and transcripts are identical for every
        // pool width even on error paths. An empty subset yields an empty
        // answer, which XORs as all-zeroes.
        let results: [Result<(), ServerError>; 2] = {
            let (srv0, srv1) = self.servers.pair_mut(0, 1);
            let (scratch0, scratch1) = (&mut self.answer_scratch, &mut self.answer_scratch2);
            let (sub0, sub1) = (&s0, &s1);
            if self.pool.threads() >= 2 {
                let tasks: Vec<Task<'_, Result<(), ServerError>>> = vec![
                    Box::new(move || srv0.xor_cells_into(sub0, scratch0)),
                    Box::new(move || srv1.xor_cells_into(sub1, scratch1)),
                ];
                let mut run = self.pool.run(tasks).into_iter();
                [run.next().expect("two tasks"), run.next().expect("two tasks")]
            } else {
                [srv0.xor_cells_into(sub0, scratch0), srv1.xor_cells_into(sub1, scratch1)]
            }
        };
        for result in results {
            result?;
        }
        let mut out = Vec::new();
        for answer in [&self.answer_scratch, &self.answer_scratch2] {
            if answer.len() > out.len() {
                out.resize(answer.len(), 0);
            }
            for (x, y) in out.iter_mut().zip(answer.iter()) {
                *x ^= y;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: usize) -> XorPir {
        let blocks: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8, (i * 7) as u8]).collect();
        XorPir::setup(&blocks)
    }

    #[test]
    fn returns_requested_record() {
        let mut pir = build(32);
        let mut rng = ChaChaRng::seed_from_u64(1);
        for i in 0..32 {
            assert_eq!(pir.query(i, &mut rng).unwrap(), vec![i as u8, (i * 7) as u8]);
        }
    }

    #[test]
    fn servers_each_see_random_subsets() {
        // Marginal inclusion frequency of every record at each server should
        // be ~1/2 regardless of the queried index.
        let mut pir = build(16);
        let mut rng = ChaChaRng::seed_from_u64(2);
        let trials = 2000;
        let mut inclusion = [0u32; 16];
        for _ in 0..trials {
            pir.servers_mut().start_recording_all();
            pir.query(3, &mut rng).unwrap();
            let transcripts = pir.servers_mut().take_transcripts();
            for addr in transcripts[0].downloaded_addresses() {
                inclusion[addr] += 1;
            }
        }
        for (i, &c) in inclusion.iter().enumerate() {
            let f = c as f64 / trials as f64;
            assert!((f - 0.5).abs() < 0.06, "record {i} inclusion {f}");
        }
    }

    /// A pooled client (concurrent two-server scan) returns the same
    /// answers and per-server stats as the sequential default from the
    /// same seed.
    #[test]
    fn pooled_query_matches_sequential() {
        let blocks: Vec<Vec<u8>> = (0..48).map(|i| vec![i as u8, (i * 3) as u8, 7]).collect();
        let run = |threads: usize| {
            let mut pir = XorPir::<SimServer>::setup(&blocks).with_pool(WorkerPool::new(threads));
            let mut rng = ChaChaRng::seed_from_u64(5);
            let answers: Vec<Vec<u8>> = (0..48).map(|i| pir.query(i, &mut rng).unwrap()).collect();
            (answers, pir.total_stats())
        };
        let sequential = run(1);
        for threads in [2usize, 4] {
            assert_eq!(run(threads), sequential, "threads = {threads}");
        }
    }

    #[test]
    fn total_work_is_linear() {
        let mut pir = build(64);
        let mut rng = ChaChaRng::seed_from_u64(3);
        let before = pir.total_stats();
        for _ in 0..20 {
            pir.query(0, &mut rng).unwrap();
        }
        let diff = pir.total_stats().since(&before);
        let per_query = diff.computed as f64 / 20.0;
        assert!((per_query - 64.0).abs() < 10.0, "expected ~n = 64 ops/query, got {per_query}");
    }
}
