//! Query types shared across the three storage primitives (Section 2.1).

/// Whether a query retrieves or overwrites a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Record retrieval.
    Read,
    /// Record overwrite.
    Write,
}

/// An information-retrieval query: the index of the record to fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IrQuery(pub usize);

/// A RAM query: `(index, op)` as in Section 2.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RamQuery {
    /// The record index in `[0, n)`.
    pub index: usize,
    /// Retrieval or overwrite.
    pub op: Op,
}

impl RamQuery {
    /// A read of `index`.
    pub fn read(index: usize) -> Self {
        Self { index, op: Op::Read }
    }

    /// A write of `index`.
    pub fn write(index: usize) -> Self {
        Self { index, op: Op::Write }
    }
}

/// A key-value-storage query: `(key, op)` with keys from a large universe.
/// Reads of keys never inserted must return "not present".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KvsQuery {
    /// The key in universe `U` (modeled as `u64`).
    pub key: u64,
    /// Retrieval or overwrite.
    pub op: Op,
}

impl KvsQuery {
    /// A read of `key`.
    pub fn read(key: u64) -> Self {
        Self { key, op: Op::Read }
    }

    /// A write of `key`.
    pub fn write(key: u64) -> Self {
        Self { key, op: Op::Write }
    }
}

/// Hamming distance between two equal-length query sequences — the
/// adjacency measure of Section 2 (`d(Q1, Q2)`).
pub fn hamming_distance<Q: PartialEq>(a: &[Q], b: &[Q]) -> usize {
    assert_eq!(a.len(), b.len(), "sequences must have equal length");
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(RamQuery::read(3), RamQuery { index: 3, op: Op::Read });
        assert_eq!(KvsQuery::write(9), KvsQuery { key: 9, op: Op::Write });
    }

    #[test]
    fn hamming() {
        let a = [RamQuery::read(1), RamQuery::read(2), RamQuery::write(3)];
        let b = [RamQuery::read(1), RamQuery::write(2), RamQuery::write(3)];
        assert_eq!(hamming_distance(&a, &b), 1);
        assert_eq!(hamming_distance(&a, &a), 0);
    }

    #[test]
    fn op_change_alone_is_a_difference() {
        // Section 2.1: adjacent RAM sequences may differ in record *or* op.
        let a = [RamQuery::read(5)];
        let b = [RamQuery::write(5)];
        assert_eq!(hamming_distance(&a, &b), 1);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn hamming_rejects_unequal_lengths() {
        hamming_distance(&[IrQuery(0)], &[IrQuery(0), IrQuery(1)]);
    }
}
