//! Zipfian sampling over `[0, n)`.
//!
//! Storage workloads in large infrastructures are famously skewed; the
//! paper's motivation (heavily trafficked storage systems) makes Zipfian
//! traces the natural realistic workload. Sampling uses a precomputed CDF
//! with binary search — O(n) memory once, O(log n) per sample.

use dps_crypto::ChaChaRng;

/// A Zipf(θ) distribution over ranks `0..n` (rank 0 most popular).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution with exponent `theta > 0` over `n` items.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is not finite and positive.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(theta.is_finite() && theta > 0.0, "theta must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point shortfall at the top.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the distribution is over zero items (never constructible).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples one rank.
    pub fn sample(&self, rng: &mut ChaChaRng) -> usize {
        let u = rng.gen_f64();
        // First index with cdf[i] >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of `rank`.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_monotone_and_reaches_one() {
        let z = Zipf::new(100, 0.99);
        for w in z.cdf.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert_eq!(*z.cdf.last().unwrap(), 1.0);
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(50, 1.2);
        let mut rng = ChaChaRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 50);
        }
    }

    #[test]
    fn rank_zero_is_most_popular() {
        let z = Zipf::new(100, 1.0);
        let mut rng = ChaChaRng::seed_from_u64(2);
        let mut counts = vec![0u32; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[99]);
    }

    #[test]
    fn empirical_frequency_matches_pmf() {
        let z = Zipf::new(10, 1.0);
        let mut rng = ChaChaRng::seed_from_u64(3);
        let trials = 100_000;
        let mut counts = [0u32; 10];
        for _ in 0..trials {
            counts[z.sample(&mut rng)] += 1;
        }
        for (rank, &count) in counts.iter().enumerate() {
            let freq = count as f64 / trials as f64;
            let pmf = z.pmf(rank);
            assert!((freq - pmf).abs() < 0.01, "rank {rank}: freq {freq:.4} vs pmf {pmf:.4}");
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(64, 0.8);
        let total: f64 = (0..64).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_item_always_sampled() {
        let z = Zipf::new(1, 1.0);
        let mut rng = ChaChaRng::seed_from_u64(4);
        assert_eq!(z.sample(&mut rng), 0);
    }
}
