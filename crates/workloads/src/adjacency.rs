//! Adjacent sequence pairs for privacy audits.
//!
//! Definition 2.1 compares transcript distributions on sequences at Hamming
//! distance exactly 1. The auditor needs *worst-case* pairs: the proofs of
//! Section 6 show that the positions whose transcript factors can differ are
//! `{k, nx(Q,k), nx(Q',k)}` — the changed position and the next re-query of
//! either record — so the hardest pairs re-query the changed records soon
//! after the change. The builders here produce those shapes.

use crate::query::{hamming_distance, IrQuery, KvsQuery, Op, RamQuery};

/// A pair of adjacent query sequences (`d(q1, q2) == 1`) for an audit.
#[derive(Debug, Clone)]
pub struct AdjacentPair<Q> {
    /// First sequence.
    pub q1: Vec<Q>,
    /// Second sequence, differing from `q1` at exactly one position.
    pub q2: Vec<Q>,
    /// The differing position.
    pub position: usize,
}

impl<Q: PartialEq + Clone> AdjacentPair<Q> {
    /// Builds a pair from a base sequence by substituting `replacement` at
    /// `position`.
    ///
    /// # Panics
    /// Panics if the replacement equals the original query there (the pair
    /// would not be adjacent) or `position` is out of range.
    pub fn substitute(base: Vec<Q>, position: usize, replacement: Q) -> Self {
        assert!(position < base.len(), "position out of range");
        assert!(base[position] != replacement, "replacement must change the query at `position`");
        let mut q2 = base.clone();
        q2[position] = replacement;
        Self { q1: base, q2, position }
    }

    /// Verifies adjacency (Hamming distance exactly one).
    pub fn is_adjacent(&self) -> bool {
        hamming_distance(&self.q1, &self.q2) == 1
    }
}

/// The canonical worst-case IR pair: both sequences are length `l`; at
/// `position` one queries record `a`, the other record `b`. (DP-IR is
/// stateless, so a single differing position is fully general — see the
/// proof of Theorem 5.1.)
pub fn ir_pair(l: usize, position: usize, a: usize, b: usize) -> AdjacentPair<IrQuery> {
    assert_ne!(a, b, "records must differ");
    let base = vec![IrQuery(a); l];
    AdjacentPair::substitute(base, position, IrQuery(b))
}

/// Worst-case RAM pair exercising the `{k, nx(Q,k), nx(Q',k)}` structure of
/// Lemma 6.7: `Q1 = [a, a, ..., a]` reads, `Q2` replaces position `k` with a
/// read of `b`. Every later query re-queries both `a` (in `Q1`'s role) and
/// the changed position's records, making all three "bad" factors active.
pub fn ram_read_pair(l: usize, k: usize, a: usize, b: usize) -> AdjacentPair<RamQuery> {
    assert_ne!(a, b, "records must differ");
    let base = vec![RamQuery::read(a); l];
    AdjacentPair::substitute(base, k, RamQuery::read(b))
}

/// RAM pair differing only in the operation (read vs write) at `k` — the
/// second flavor of adjacency in Section 2.1. Any DP-RAM must hide whether
/// a query mutates.
pub fn ram_op_pair(l: usize, k: usize, a: usize) -> AdjacentPair<RamQuery> {
    let base = vec![RamQuery::read(a); l];
    AdjacentPair::substitute(base, k, RamQuery::write(a))
}

/// Interleaved RAM pair: `Q1` cycles over `[a, b, a, b, ...]`; `Q2` replaces
/// position `k` with `c`. Exercises `pr`/`nx` chains with multiple records.
pub fn ram_interleaved_pair(
    l: usize,
    k: usize,
    a: usize,
    b: usize,
    c: usize,
) -> AdjacentPair<RamQuery> {
    let base: Vec<RamQuery> = (0..l)
        .map(|i| RamQuery::read(if i % 2 == 0 { a } else { b }))
        .collect();
    assert_ne!(base[k].index, c, "replacement must differ at position k");
    AdjacentPair::substitute(base, k, RamQuery::read(c))
}

/// KVS pair where the differing query swaps a *present* key for an *absent*
/// one — the adversary must not learn whether a lookup hit or missed.
pub fn kvs_hit_miss_pair(l: usize, k: usize, present: u64, absent: u64) -> AdjacentPair<KvsQuery> {
    assert_ne!(present, absent);
    let base = vec![KvsQuery::read(present); l];
    AdjacentPair::substitute(base, k, KvsQuery::read(absent))
}

/// KVS pair between two present keys, differing at `k`; may also flip the op.
pub fn kvs_key_pair(
    l: usize,
    k: usize,
    key_a: u64,
    key_b: u64,
    op_b: Op,
) -> AdjacentPair<KvsQuery> {
    let base = vec![KvsQuery::read(key_a); l];
    let replacement = KvsQuery { key: key_b, op: op_b };
    AdjacentPair::substitute(base, k, replacement)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ir_pair_is_adjacent() {
        let p = ir_pair(5, 2, 0, 3);
        assert!(p.is_adjacent());
        assert_eq!(p.q1[2], IrQuery(0));
        assert_eq!(p.q2[2], IrQuery(3));
    }

    #[test]
    fn ram_read_pair_is_adjacent() {
        let p = ram_read_pair(4, 1, 0, 1);
        assert!(p.is_adjacent());
        assert_eq!(p.position, 1);
    }

    #[test]
    fn ram_op_pair_differs_only_in_op() {
        let p = ram_op_pair(3, 0, 5);
        assert!(p.is_adjacent());
        assert_eq!(p.q1[0].index, p.q2[0].index);
        assert_ne!(p.q1[0].op, p.q2[0].op);
    }

    #[test]
    fn interleaved_pair_is_adjacent() {
        let p = ram_interleaved_pair(6, 3, 0, 1, 2);
        assert!(p.is_adjacent());
        assert_eq!(p.q1[3].index, 1);
        assert_eq!(p.q2[3].index, 2);
    }

    #[test]
    fn kvs_pairs_are_adjacent() {
        assert!(kvs_hit_miss_pair(4, 2, 10, 99).is_adjacent());
        assert!(kvs_key_pair(4, 0, 1, 2, Op::Write).is_adjacent());
    }

    #[test]
    #[should_panic(expected = "must change")]
    fn identical_replacement_rejected() {
        AdjacentPair::substitute(vec![IrQuery(1); 3], 0, IrQuery(1));
    }
}
