//! Trace generators for overhead and throughput experiments.

use crate::query::{IrQuery, KvsQuery, Op, RamQuery};
use crate::zipf::Zipf;
use dps_crypto::ChaChaRng;

/// `l` independent uniform IR queries over `[0, n)`.
pub fn uniform_ir(n: usize, l: usize, rng: &mut ChaChaRng) -> Vec<IrQuery> {
    (0..l).map(|_| IrQuery(rng.gen_index(n))).collect()
}

/// `l` Zipf(θ)-distributed IR queries over `[0, n)`.
pub fn zipf_ir(n: usize, l: usize, theta: f64, rng: &mut ChaChaRng) -> Vec<IrQuery> {
    let z = Zipf::new(n, theta);
    (0..l).map(|_| IrQuery(z.sample(rng))).collect()
}

/// `l` RAM queries with uniform indices and the given write fraction.
pub fn uniform_ram(n: usize, l: usize, write_fraction: f64, rng: &mut ChaChaRng) -> Vec<RamQuery> {
    (0..l)
        .map(|_| {
            let op = if rng.gen_bool(write_fraction) { Op::Write } else { Op::Read };
            RamQuery { index: rng.gen_index(n), op }
        })
        .collect()
}

/// `l` RAM queries with Zipf(θ) indices and the given write fraction.
pub fn zipf_ram(
    n: usize,
    l: usize,
    theta: f64,
    write_fraction: f64,
    rng: &mut ChaChaRng,
) -> Vec<RamQuery> {
    let z = Zipf::new(n, theta);
    (0..l)
        .map(|_| {
            let op = if rng.gen_bool(write_fraction) { Op::Write } else { Op::Read };
            RamQuery { index: z.sample(rng), op }
        })
        .collect()
}

/// A universe of `count` distinct random 64-bit keys — the "large universe
/// `U`" of the KVS primitive (collisions across `u64` are negligible but we
/// deduplicate anyway so tests can rely on distinctness).
pub fn key_universe(count: usize, rng: &mut ChaChaRng) -> Vec<u64> {
    let mut seen = std::collections::HashSet::with_capacity(count);
    let mut keys = Vec::with_capacity(count);
    while keys.len() < count {
        let k = rng.next_u64();
        if seen.insert(k) {
            keys.push(k);
        }
    }
    keys
}

/// `l` KVS queries over the given key set: writes with probability
/// `write_fraction`, and reads of *absent* keys (uniform random keys, almost
/// surely never inserted) with probability `miss_fraction`.
pub fn kvs_trace(
    keys: &[u64],
    l: usize,
    write_fraction: f64,
    miss_fraction: f64,
    rng: &mut ChaChaRng,
) -> Vec<KvsQuery> {
    assert!(!keys.is_empty(), "need at least one key");
    (0..l)
        .map(|_| {
            if rng.gen_bool(miss_fraction) {
                // A fresh random key: a miss with probability 1 - count/2^64.
                KvsQuery::read(rng.next_u64())
            } else {
                let key = keys[rng.gen_index(keys.len())];
                let op = if rng.gen_bool(write_fraction) { Op::Write } else { Op::Read };
                KvsQuery { key, op }
            }
        })
        .collect()
}

/// Deterministic payload for record `index`: distinct per index and
/// verifiable by tests without storing a mirror.
pub fn payload_for(index: u64, block_size: usize) -> Vec<u8> {
    let mut out = vec![0u8; block_size];
    let seed = index.wrapping_mul(0x9e37_79b9_7f4a_7c15).to_le_bytes();
    for (i, byte) in out.iter_mut().enumerate() {
        *byte = seed[i % 8] ^ (i as u8);
    }
    out
}

/// An initial database of `n` blocks of `block_size` bytes with
/// per-index-distinct contents.
pub fn database(n: usize, block_size: usize) -> Vec<Vec<u8>> {
    (0..n as u64).map(|i| payload_for(i, block_size)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_ir_in_range() {
        let mut rng = ChaChaRng::seed_from_u64(1);
        assert!(uniform_ir(10, 100, &mut rng).iter().all(|q| q.0 < 10));
    }

    #[test]
    fn write_fraction_respected() {
        let mut rng = ChaChaRng::seed_from_u64(2);
        let trace = uniform_ram(100, 10_000, 0.25, &mut rng);
        let writes = trace.iter().filter(|q| q.op == Op::Write).count();
        let frac = writes as f64 / trace.len() as f64;
        assert!((frac - 0.25).abs() < 0.03, "write fraction {frac}");
    }

    #[test]
    fn zipf_ram_skews_to_low_ranks() {
        let mut rng = ChaChaRng::seed_from_u64(3);
        let trace = zipf_ram(1000, 10_000, 1.1, 0.0, &mut rng);
        let low = trace.iter().filter(|q| q.index < 10).count();
        assert!(low > 1000, "Zipf trace should concentrate: {low} hits in top-10");
    }

    #[test]
    fn key_universe_is_distinct() {
        let mut rng = ChaChaRng::seed_from_u64(4);
        let keys = key_universe(1000, &mut rng);
        let set: std::collections::HashSet<_> = keys.iter().collect();
        assert_eq!(set.len(), 1000);
    }

    #[test]
    fn kvs_trace_misses_use_fresh_keys() {
        let mut rng = ChaChaRng::seed_from_u64(5);
        let keys = key_universe(50, &mut rng);
        let key_set: std::collections::HashSet<_> = keys.iter().copied().collect();
        let trace = kvs_trace(&keys, 5000, 0.3, 0.5, &mut rng);
        let misses = trace.iter().filter(|q| !key_set.contains(&q.key)).count();
        let frac = misses as f64 / trace.len() as f64;
        assert!((frac - 0.5).abs() < 0.05, "miss fraction {frac}");
        // Misses must be reads (you cannot write a key you do not hold).
        assert!(trace
            .iter()
            .filter(|q| !key_set.contains(&q.key))
            .all(|q| q.op == Op::Read));
    }

    #[test]
    fn payloads_are_distinct_and_sized() {
        let a = payload_for(1, 64);
        let b = payload_for(2, 64);
        assert_eq!(a.len(), 64);
        assert_ne!(a, b);
        assert_eq!(a, payload_for(1, 64), "payloads are deterministic");
    }

    #[test]
    fn database_shape() {
        let db = database(16, 32);
        assert_eq!(db.len(), 16);
        assert!(db.iter().all(|b| b.len() == 32));
    }
}
