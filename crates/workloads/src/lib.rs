//! Workload generation for the `dp-storage` experiments.
//!
//! The paper's privacy definition (Definition 2.1) quantifies over *pairs of
//! adjacent query sequences*; its overhead claims are per-query and hold for
//! any sequence. This crate provides both sides:
//!
//! * realistic traces for overhead/throughput measurements — uniform and
//!   Zipfian index distributions, read/write mixes, and key-value traces
//!   with misses ([`generators`]);
//! * worst-case adjacent sequence pairs for the Monte-Carlo privacy auditor
//!   ([`adjacency`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adjacency;
pub mod generators;
pub mod query;
pub mod zipf;

pub use query::{IrQuery, KvsQuery, Op, RamQuery};
pub use zipf::Zipf;
