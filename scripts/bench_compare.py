#!/usr/bin/env python3
"""Soft bench-regression check across BENCH_*.json generations.

Usage: bench_compare.py BASELINE.json CURRENT.json [--warn-pct 25]

Handles both bench_smoke JSON formats:
  * flat map  {"scheme": median_ns, ...}            (BENCH_1 / BENCH_2)
  * record list [{"scheme": .., "shards": S, "threads": T,
                  "median_ns": ..}, ...]            (BENCH_3 onward)

Only single-config rows (shards == threads == 1) are compared against a
flat-map baseline, so the files stay comparable across PRs as sweeps are
added. Always exits 0: this is a *soft* check — it prints warnings for
medians that regressed more than the threshold and a summary either way.
"""

import argparse
import json
import sys


def load(path):
    """Returns {scheme: median_ns} for the comparable single-config rows."""
    with open(path) as f:
        data = json.load(f)
    if isinstance(data, dict):
        return {k: int(v) for k, v in data.items()}
    out = {}
    for rec in data:
        if rec.get("shards", 1) == 1 and rec.get("threads", 1) == 1:
            out[rec["scheme"]] = int(rec["median_ns"])
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--warn-pct", type=float, default=25.0)
    args = parser.parse_args()
    warn_pct = args.warn_pct
    baseline_path, current_path = args.baseline, args.current
    baseline = load(baseline_path)
    current = load(current_path)

    regressions = 0
    for scheme in sorted(baseline):
        if scheme not in current:
            print(f"  [gone]  {scheme}: present in {baseline_path} only")
            continue
        old, new = baseline[scheme], current[scheme]
        delta = 100.0 * (new - old) / old if old else 0.0
        marker = " "
        if delta > warn_pct:
            marker = "!"
            regressions += 1
            print(f"::warning::bench regression {scheme}: {old} -> {new} ns (+{delta:.0f}%)")
        print(f"  [{marker}] {scheme:<24} {old:>10} -> {new:>10} ns  ({delta:+.0f}%)")
    for scheme in sorted(set(current) - set(baseline)):
        print(f"  [new]   {scheme}: {current[scheme]} ns")

    if regressions:
        print(f"{regressions} scheme(s) regressed more than {warn_pct:.0f}% (soft check, not failing)")
    else:
        print(f"no scheme regressed more than {warn_pct:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
