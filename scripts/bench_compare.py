#!/usr/bin/env python3
"""Bench-regression check across BENCH_*.json generations.

Usage: bench_compare.py BASELINE.json CURRENT.json [--warn-pct 25] [--strict]
                        [--only KEY_PREFIX ...]

Handles both bench_smoke JSON formats:
  * flat map  {"scheme": median_ns, ...}            (BENCH_1 / BENCH_2)
  * record list [{"scheme": .., "shards": S, "threads": T,
                  "median_ns": ..}, ...]            (BENCH_3 onward)

When both files are record lists, every (scheme, shards, threads, policy)
configuration is compared — sweep rows included; the optional "policy"
column (durable disk rows: fsync_off / fsync_always / group_commit)
keeps same-named rows under different durability policies from
colliding. Against a flat-map
baseline only the single-config rows (shards == threads == 1) are
comparable, and that subset is used. Rows present in only one generation
are always reported explicitly ([gone] / [new]), never silently skipped.

By default this is a *soft* check: it prints warnings for medians that
regressed more than the threshold and exits 0 either way (what CI runs).
With --strict, any regression beyond the threshold exits non-zero — for
dedicated-hardware gates where the numbers are stable enough to fail on.

--only SCHEME_PREFIX (repeatable) restricts the comparison to schemes
whose name starts with one of the given prefixes. This lets CI run a
hard --strict gate on the stable crypto-throughput rows while the noisy
scheme rows stay on the soft full-sweep check.
"""

import argparse
import json
import sys


def load(path, single_config_only):
    """Returns {key: median_ns}; keys are (scheme, shards, threads, policy)."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    if isinstance(data, dict):
        for scheme, ns in data.items():
            out[(scheme, 1, 1, "")] = int(ns)
        return out
    for rec in data:
        key = (
            rec["scheme"],
            int(rec.get("shards", 1)),
            int(rec.get("threads", 1)),
            rec.get("policy", ""),
        )
        if single_config_only and key[1:3] != (1, 1):
            continue
        out[key] = int(rec["median_ns"])
    return out


def is_flat_map(path):
    with open(path) as f:
        return isinstance(json.load(f), dict)


def fmt(key):
    scheme, shards, threads, policy = key
    name = scheme if not policy else f"{scheme}{{{policy}}}"
    if (shards, threads) == (1, 1):
        return name
    return f"{name}[s={shards},t={threads}]"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--warn-pct", type=float, default=25.0)
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when any scheme regresses beyond --warn-pct",
    )
    parser.add_argument(
        "--only",
        action="append",
        metavar="SCHEME_PREFIX",
        help="compare only schemes starting with this prefix (repeatable)",
    )
    args = parser.parse_args()
    warn_pct = args.warn_pct

    # Sweep rows are only mutually comparable between two record-format
    # files; a flat-map side restricts both to the single-config subset.
    single_only = is_flat_map(args.baseline) or is_flat_map(args.current)
    baseline = load(args.baseline, single_only)
    current = load(args.current, single_only)

    if args.only:
        prefixes = tuple(args.only)
        baseline = {k: v for k, v in baseline.items() if k[0].startswith(prefixes)}
        current = {k: v for k, v in current.items() if k[0].startswith(prefixes)}
        if not baseline or not current:
            # A gate whose rows vanished from either side must not pass
            # vacuously: a renamed bench row would otherwise silently
            # disable the --strict CI gate forever.
            side = args.baseline if not baseline else args.current
            print(f"no scheme matches --only {list(prefixes)} in {side}; nothing to compare")
            return 1 if args.strict else 0

    regressions = 0
    missing = 0
    for key in sorted(baseline):
        if key not in current:
            missing += 1
            print(f"  [gone]  {fmt(key)}: present in {args.baseline} only")
            continue
        old, new = baseline[key], current[key]
        delta = 100.0 * (new - old) / old if old else 0.0
        marker = " "
        if delta > warn_pct:
            marker = "!"
            regressions += 1
            print(f"::warning::bench regression {fmt(key)}: {old} -> {new} ns (+{delta:.0f}%)")
        print(f"  [{marker}] {fmt(key):<34} {old:>10} -> {new:>10} ns  ({delta:+.0f}%)")
    for key in sorted(set(current) - set(baseline)):
        print(f"  [new]   {fmt(key)}: {current[key]} ns")

    failures = []
    if regressions:
        failures.append(f"{regressions} scheme(s) regressed more than {warn_pct:.0f}%")
    if args.strict and missing:
        # Disappeared rows only fail strict runs: soft cross-generation
        # diffs legitimately outgrow old baselines, but a strict gate's
        # rows going [gone] means the gate no longer measures anything.
        failures.append(f"{missing} baseline scheme(s) missing from {args.current}")
    if failures:
        mode = "failing (--strict)" if args.strict else "soft check, not failing"
        print(f"{'; '.join(failures)} ({mode})")
        return 1 if args.strict else 0
    print(f"no scheme regressed more than {warn_pct:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
