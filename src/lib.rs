//! # dp-storage
//!
//! A reproduction of *"What Storage Access Privacy is Achievable with Small
//! Overhead?"* (Patel, Persiano, Yeo — PODS 2019) as a production-quality
//! Rust workspace.
//!
//! This umbrella crate re-exports every workspace crate under one roof so
//! that applications can depend on a single package:
//!
//! * [`crypto`] — ChaCha20/CTR encryption, HMAC-SHA256 PRF, deterministic CSPRNG.
//! * [`server`] — the balls-and-bins passive storage server with transcript
//!   recording and cost accounting.
//! * [`net`] — the same server model on a real wire: a length-prefixed
//!   binary protocol, a threaded TCP daemon, and a remote client every
//!   scheme runs against unmodified.
//! * [`workloads`] — query-sequence generators (uniform, Zipf, adjacency pairs).
//! * [`hashing`] — classic and oblivious two-choice hashing (Section 7.2).
//! * [`oram`] — Path ORAM and linear-scan ORAM baselines.
//! * [`pir`] — full-scan and 2-server XOR PIR baselines.
//! * [`core`] — the paper's constructions: DP-IR, DP-RAM, DP-KVS,
//!   multi-server DP-IR, and the insecure strawman of Section 4.
//! * [`analysis`] — the paper's bounds as executable formulas, plus the
//!   Monte-Carlo privacy auditor.
//!
//! ## Quickstart
//!
//! ```
//! use dp_storage::core::dp_ram::{DpRam, DpRamConfig};
//! use dp_storage::crypto::ChaChaRng;
//! use dp_storage::server::SimServer;
//!
//! let mut rng = ChaChaRng::seed_from_u64(7);
//! let n = 256;
//! let blocks: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 32]).collect();
//! let server = SimServer::new();
//! let mut ram = DpRam::setup(DpRamConfig::recommended(n), &blocks, server, &mut rng).unwrap();
//!
//! let value = ram.read(42, &mut rng).unwrap();
//! assert_eq!(value, vec![42u8; 32]);
//! ram.write(42, vec![0xAA; 32], &mut rng).unwrap();
//! assert_eq!(ram.read(42, &mut rng).unwrap(), vec![0xAA; 32]);
//! ```

#![forbid(unsafe_code)]

pub use dps_analysis as analysis;
pub use dps_core as core;
pub use dps_crypto as crypto;
pub use dps_hashing as hashing;
pub use dps_net as net;
pub use dps_oram as oram;
pub use dps_pir as pir;
pub use dps_server as server;
pub use dps_workloads as workloads;
