//! `dpstore` — command-line front end for the dp-storage workspace.
//!
//! A small operator tool: spin up any scheme over synthetic data, measure
//! its costs, audit its privacy, or print the paper's bounds for your
//! parameters.
//!
//! ```text
//! dpstore demo-ram   [--n 4096] [--ops 500] [--block 256]
//! dpstore demo-kvs   [--n 1024] [--ops 300] [--value 64]
//! dpstore audit      [--scheme dp-ram|dp-ir|strawman] [--trials 60000]
//! dpstore bounds     [--n 4096] [--alpha 0.1] [--client 4]
//! ```

use dp_storage::analysis::confidence::wilson;
use dp_storage::analysis::{audit_views, bounds};
use dp_storage::core::dp_ir::{DpIr, DpIrConfig};
use dp_storage::core::dp_kvs::{DpKvs, DpKvsConfig};
use dp_storage::core::dp_ram::{DpRam, DpRamConfig};
use dp_storage::core::strawman::InsecureStrawmanIr;
use dp_storage::crypto::ChaChaRng;
use dp_storage::server::SimServer;
use dp_storage::workloads::generators::database;
use dp_storage::workloads::Op;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage_and_exit();
    };
    let flags = Flags::parse(&args[1..]);
    match command.as_str() {
        "demo-ram" => demo_ram(&flags),
        "demo-kvs" => demo_kvs(&flags),
        "audit" => audit(&flags),
        "bounds" => print_bounds(&flags),
        other => {
            eprintln!("unknown command: {other}");
            usage_and_exit();
        }
    }
}

fn usage_and_exit() -> ! {
    eprintln!("usage: dpstore <command> [flags]");
    eprintln!("  demo-ram   [--n N] [--ops K] [--block B]   run DP-RAM and report costs");
    eprintln!("  demo-kvs   [--n N] [--ops K] [--value B]   run DP-KVS and report costs");
    eprintln!("  audit      [--scheme S] [--trials T]       Monte-Carlo (eps, delta) audit");
    eprintln!("             S in {{dp-ram, dp-ir, strawman}}");
    eprintln!("  bounds     [--n N] [--alpha A] [--client C] print the paper's lower bounds");
    std::process::exit(2);
}

/// Minimal `--key value` flag parser (keeps the binary dependency-free).
struct Flags(Vec<(String, String)>);

impl Flags {
    fn parse(args: &[String]) -> Self {
        let mut flags = Vec::new();
        let mut it = args.iter();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                eprintln!("expected --flag, got {key}");
                usage_and_exit();
            };
            let Some(value) = it.next() else {
                eprintln!("flag --{name} needs a value");
                usage_and_exit();
            };
            flags.push((name.to_string(), value.clone()));
        }
        Self(flags)
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.0
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("invalid value for --{name}: {v}");
                    std::process::exit(2);
                })
            })
            .unwrap_or(default)
    }

    fn get_str(&self, name: &str, default: &str) -> String {
        self.0
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| default.to_string())
    }
}

fn demo_ram(flags: &Flags) {
    let n: usize = flags.get("n", 4096);
    let ops: usize = flags.get("ops", 500);
    let block: usize = flags.get("block", 256);

    let mut rng = ChaChaRng::seed_from_u64(flags.get("seed", 0u64));
    let db = database(n, block);
    let config = DpRamConfig::recommended(n);
    let mut ram = DpRam::setup(config, &db, SimServer::new(), &mut rng)
        .expect("valid recommended parameters");

    println!("DP-RAM over n = {n} records of {block} bytes");
    println!(
        "  stash probability p = {:.6} (expected stash {:.0} blocks)",
        config.stash_probability,
        config.expected_stash()
    );
    println!(
        "  privacy: pure eps-DP, eps = O(log n); proof bound {:.1}",
        config.epsilon_upper_bound()
    );

    let before = ram.server_stats();
    for i in 0..ops {
        if i % 4 == 0 {
            ram.write(i % n, vec![0xA5; block], &mut rng).expect("in range");
        } else {
            ram.read(i % n, &mut rng).expect("in range");
        }
    }
    let d = ram.server_stats().since(&before);
    println!("after {ops} ops (25% writes):");
    println!(
        "  {} downloads + {} uploads = {:.3} blocks/op, {:.3} round trips/op",
        d.downloads,
        d.uploads,
        (d.downloads + d.uploads) as f64 / ops as f64,
        d.round_trips as f64 / ops as f64
    );
    println!("  client stash: {} blocks (high water {})", ram.stash_size(), ram.max_stash_size());
}

fn demo_kvs(flags: &Flags) {
    let n: usize = flags.get("n", 1024);
    let ops: usize = flags.get("ops", 300);
    let value: usize = flags.get("value", 64);

    let mut rng = ChaChaRng::seed_from_u64(flags.get("seed", 0u64));
    let config = DpKvsConfig::recommended(n, value);
    let mut kvs = DpKvs::setup(config, SimServer::new(), &mut rng).expect("valid parameters");
    println!("DP-KVS with capacity {n}, {value}-byte values");
    println!(
        "  forest: {} buckets, depth {} (= cells/bucket-query), {} server cells",
        kvs.config().geometry.n_buckets,
        kvs.config().geometry.depth(),
        kvs.config().geometry.total_nodes()
    );

    for k in 0..(n / 2) as u64 {
        kvs.put(k.wrapping_mul(0x9e37_79b9_7f4a_7c15), vec![0u8; value], &mut rng)
            .expect("within capacity whp");
    }
    let before = kvs.server_stats();
    let mut hits = 0usize;
    for i in 0..ops as u64 {
        let key = (i % (n as u64)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        if kvs.get(key, &mut rng).expect("healthy store").is_some() {
            hits += 1;
        }
    }
    let d = kvs.server_stats().since(&before);
    println!("after {} puts and {ops} gets ({hits} hits, misses indistinguishable):", n / 2);
    println!(
        "  {:.1} cells/op over {:.0} round trips/op; client holds {} cells",
        (d.downloads + d.uploads) as f64 / ops as f64,
        d.round_trips as f64 / ops as f64,
        kvs.client_cells()
    );
}

fn audit(flags: &Flags) {
    let trials: usize = flags.get("trials", 60_000);
    let scheme = flags.get_str("scheme", "dp-ram");
    println!("auditing {scheme} with {trials} trials per sequence (Definition 2.1 adjacency)...");

    let report = match scheme.as_str() {
        "dp-ram" => {
            let n = 4;
            let run = |query: usize, base: u64| {
                move |trial: usize| {
                    let mut rng = ChaChaRng::seed_from_u64(base + trial as u64);
                    let db = database(n, 4);
                    let mut ram = DpRam::setup(
                        DpRamConfig { n, stash_probability: 0.5 },
                        &db,
                        SimServer::new(),
                        &mut rng,
                    )
                    .expect("valid parameters");
                    let (_, t) = ram
                        .query_traced(query, Op::Read, None, &mut rng)
                        .expect("in range");
                    vec![t.download as u8, t.overwrite as u8]
                }
            };
            audit_views(trials, 40, run(0, 0), run(1, 1 << 40))
        }
        "dp-ir" => {
            let n = 8;
            let config = DpIrConfig::with_epsilon(n, 2.0, 0.25).expect("valid parameters");
            println!("  analytic eps = {:.3}", config.epsilon());
            let run = |query: usize, base: u64| {
                move |trial: usize| {
                    let mut rng = ChaChaRng::seed_from_u64(base + trial as u64);
                    let db = database(n, 4);
                    let mut ir = DpIr::setup(config, &db, SimServer::new()).expect("valid");
                    let (_, set) = ir.query_traced(query, &mut rng).expect("in range");
                    set.into_iter().map(|x| x as u8).collect()
                }
            };
            audit_views(trials, 40, run(1, 0), run(5, 1 << 40))
        }
        "strawman" => {
            let n = 16;
            let run = |query: usize, base: u64| {
                move |trial: usize| {
                    let mut rng = ChaChaRng::seed_from_u64(base + trial as u64);
                    let db = database(n, 4);
                    let mut ir = InsecureStrawmanIr::setup(&db, SimServer::new());
                    let (_, set) = ir.query_traced(query, &mut rng).expect("in range");
                    vec![u8::from(set.contains(&0))]
                }
            };
            audit_views(trials, 40, run(0, 0), run(3, 1 << 40))
        }
        other => {
            eprintln!("unknown scheme: {other}");
            usage_and_exit();
        }
    };

    let (s1, s2) = report.support_sizes();
    let eps = report.epsilon_hat();
    println!("  views observed: {s1} / {s2}");
    println!("  eps-hat = {eps:.3}");
    for budget in [eps, eps + 0.5, 10.0] {
        println!("  delta-hat at eps = {budget:.2}: {:.3e}", report.delta_at(budget));
    }
    // Error bar on the dominant view's probability, for calibration.
    let ci = wilson((trials as f64 / s1.max(1) as f64) as u64, trials as u64, 0.95);
    println!("  (per-view sampling resolution ~{:.1e} at 95% confidence)", ci.width());
    if scheme == "strawman" {
        println!("  verdict: delta stays ~1 at every eps — no privacy, as Section 4 proves.");
    } else {
        println!("  verdict: finite eps-hat, delta-hat ~ 0 — the scheme honors pure eps-DP.");
    }
}

fn print_bounds(flags: &Flags) {
    let n: usize = flags.get("n", 4096);
    let alpha: f64 = flags.get("alpha", 0.1);
    let c: usize = flags.get("client", 4);
    println!("paper lower bounds at n = {n}, alpha = {alpha}, client storage c = {c}:");
    println!(
        "  Thm 3.3  errorless DP-IR:        >= {:.0} ops/query at every eps",
        bounds::thm_3_3_errorless_ir_ops(n, 0.0)
    );
    for eps in [1.0, (n as f64).ln() / 2.0, (n as f64).ln()] {
        println!(
            "  Thm 3.4  erroring DP-IR, eps = {eps:.2}:  >= {:.1} ops/query (construction K = {})",
            bounds::thm_3_4_ir_ops(n, eps, alpha, 0.0),
            bounds::thm_5_1_download_count(n, eps, alpha)
        );
    }
    for eps in [1.0, (n as f64).ln() / 2.0, (n as f64).ln()] {
        println!(
            "  Thm 3.7  DP-RAM, eps = {eps:.2}:          >= {:.2} blocks/query",
            bounds::thm_3_7_ram_ops(n, eps, 0.0, c)
        );
    }
    println!(
        "  => constant overhead (3 blocks/query) becomes feasible at eps >= {:.2} = Theta(log n)",
        bounds::thm_3_7_epsilon_for_constant_overhead(n, 0.0, c, 3.0)
    );
}
