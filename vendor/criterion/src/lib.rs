//! Offline, API-compatible stand-in for the [`criterion`] benchmark
//! harness.
//!
//! The build environment has no network access to crates.io, so this
//! vendored shim implements the slice of the Criterion API the workspace's
//! benches use: [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`],
//! [`Bencher::iter`], [`Throughput`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of Criterion's statistical machinery it takes `sample_size`
//! timed samples per benchmark (after a short warm-up) and prints
//! `min / median / mean` wall-clock times per iteration. That is enough to
//! compare the workspace's schemes against each other and to keep every
//! bench compiling and runnable with `cargo bench`.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything usable as a benchmark identifier (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Renders the identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples after warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-sample iteration scaling: aim for samples that
        // are long enough to time reliably but keep total cost bounded.
        let warm_start = Instant::now();
        black_box(routine());
        let one = warm_start.elapsed().max(Duration::from_nanos(1));
        let iters_per_sample =
            (Duration::from_millis(2).as_nanos() / one.as_nanos()).clamp(1, 10_000) as usize;

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample as u32);
        }
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        let mut line =
            format!("{:<48} min {:>12?}  median {:>12?}  mean {:>12?}", id, min, median, mean);
        if let Some(Throughput::Bytes(bytes)) = throughput {
            let gib_s = bytes as f64 / median.as_secs_f64() / (1u64 << 30) as f64;
            line.push_str(&format!("  ({gib_s:.3} GiB/s)"));
        }
        println!("{line}");
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target measurement time (accepted, unused by the shim).
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Sets the warm-up time (accepted, unused by the shim).
    pub fn warm_up_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        b.report(&label, self.throughput);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b, input);
        b.report(&label, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies command-line configuration (accepted, unused by the shim —
    /// `cargo bench` passes `--bench`, which we can ignore).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, throughput: None, _criterion: self }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
