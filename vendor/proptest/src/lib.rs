//! Offline, API-compatible stand-in for the [`proptest`] crate.
//!
//! The build environment for this workspace has no network access to
//! crates.io, so this vendored shim implements the (small) slice of the
//! proptest API that the workspace's property suites use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`],
//! * [`Strategy`] with `prop_map` / `prop_filter` / `prop_flat_map`,
//! * [`any`] for primitive types, integer/float range strategies, tuple
//!   strategies, [`collection::vec`], [`array::uniform32`], and [`Just`].
//!
//! There is **no shrinking**: a failing case panics immediately with the
//! assertion message. Generation is fully deterministic — the RNG seed is
//! derived from the test name (override with `PROPTEST_SEED`), and the
//! case count honours `PROPTEST_CASES` so CI can trim long suites
//! globally.
//!
//! [`proptest`]: https://docs.rs/proptest

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64-based RNG driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from an explicit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Creates an RNG whose seed is derived from `name` (typically the
    /// test function name) so every test gets an independent but
    /// reproducible stream. `PROPTEST_SEED` overrides the base seed.
    pub fn from_name(name: &str) -> Self {
        let base: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        // FNV-1a over the name, mixed with the base seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h ^ base }
    }

    /// Next raw 64-bit output (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform u128 below `bound` (`bound > 0`).
    fn below(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        wide % bound
    }
}

/// Runner configuration; only the case count is meaningful here.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Applies the `PROPTEST_CASES` environment cap, if set.
    pub fn capped(self) -> Self {
        match std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse::<u32>().ok())
        {
            Some(cap) => ProptestConfig { cases: self.cases.min(cap.max(1)) },
            None => self,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Re-draws until `f` accepts the value (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, f }
    }

    /// Chains a dependent strategy derived from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy (API-compatibility helper).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Boxed dynamic strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter ({}) rejected 10000 consecutive candidates", self.whence);
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of its payload.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "arbitrary value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

// Like real proptest's default float strategy: both signs and the full
// finite magnitude spectrum (including zero and subnormals), but never
// infinities or NaN.
impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        loop {
            let v = f64::from_bits(rng.next_u64());
            if v.is_finite() {
                return v;
            }
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        loop {
            let v = f32::from_bits(rng.next_u64() as u32);
            if v.is_finite() {
                return v;
            }
        }
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// Ranges are widened through $wide (u128 for unsigned, i128 for signed)
// so that spans of ranges crossing zero are computed without overflow.
macro_rules! range_strategy {
    ($($t:ty => $wide:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $wide - self.start as $wide) as u128;
                (self.start as $wide + rng.below(span) as $wide) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as $wide - start as $wide) as u128 + 1;
                (start as $wide + rng.below(span) as $wide) as $t
            }
        }
    )*};
}
range_strategy!(
    u8 => u128, u16 => u128, u32 => u128, u64 => u128, usize => u128,
    i8 => i128, i16 => i128, i32 => i128, i64 => i128, isize => i128
);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start() <= self.end(), "empty range strategy");
        self.start() + rng.next_f64() * (self.end() - self.start())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
    (A, B, C, D, E, F, G);
    (A, B, C, D, E, F, G, H);
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A size specification for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_inclusive: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { min: r.start, max_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max_inclusive: *r.end() }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates a vector with length drawn from `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_inclusive - self.size.min) as u128 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Fixed-size array strategies (`proptest::array::uniform32`).
pub mod array {
    use super::{Strategy, TestRng};

    macro_rules! uniform_array {
        ($($fn_name:ident, $struct_name:ident, $n:expr;)*) => {$(
            /// Strategy for `[S::Value; N]` arrays.
            pub struct $struct_name<S>(S);

            /// Generates arrays whose elements all come from `element`.
            pub fn $fn_name<S: Strategy>(element: S) -> $struct_name<S> {
                $struct_name(element)
            }

            impl<S: Strategy> Strategy for $struct_name<S> {
                type Value = [S::Value; $n];
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    std::array::from_fn(|_| self.0.generate(rng))
                }
            }
        )*};
    }

    uniform_array! {
        uniform4, Uniform4, 4;
        uniform8, Uniform8, 8;
        uniform16, Uniform16, 16;
        uniform32, Uniform32, 32;
    }
}

/// Equivalent of `proptest::test_runner` for config paths.
pub mod test_runner {
    pub use super::ProptestConfig as Config;
    pub use super::TestRng;
}

/// Short-hand module mirroring `proptest::prop`.
pub mod prop {
    pub use super::{array, collection};
}

/// The strategy namespace mirroring `proptest::strategy`.
pub mod strategy {
    pub use super::{BoxedStrategy, Just, Strategy};
}

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use super::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property; panics with the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*)
    };
}

/// Skips the current case when the assumption fails. Without shrinking or
/// rejection bookkeeping this simply `continue`s the case loop, so it must
/// appear directly inside the `proptest!` body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            continue;
        }
    };
}

/// Defines property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_prop(x in 0usize..100, flip in any::<bool>()) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $crate::ProptestConfig::capped($config);
            let mut __rng = $crate::TestRng::from_name(stringify!($name));
            for __case in 0..__config.cases {
                let ($($pat,)+) =
                    ($($crate::Strategy::generate(&($strategy), &mut __rng),)+);
                $body
            }
        }
    )*};
}
