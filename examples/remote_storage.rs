//! Remote storage: the same DP-RAM, but the untrusted server lives on
//! the other side of a TCP connection — the deployment shape the paper
//! actually models.
//!
//! ```text
//! cargo run --release --example remote_storage
//! ```

use dp_storage::core::dp_ram::{DpRam, DpRamConfig};
use dp_storage::crypto::ChaChaRng;
use dp_storage::net::{NetDaemon, RemoteServer};
use dp_storage::server::ShardedServer;

fn main() {
    // 1. Server side: a sharded storage daemon on a loopback port. In a
    //    real deployment this runs on the untrusted storage machine.
    let daemon = NetDaemon::spawn(ShardedServer::new(4)).expect("bind loopback daemon");
    println!("storage daemon listening on {}", daemon.local_addr());

    // 2. Client side: connect, and hand the connection to DP-RAM exactly
    //    where an in-process SimServer would go. Nothing else changes.
    let n = 1024;
    let blocks: Vec<Vec<u8>> = (0..n).map(|i| vec![(i % 251) as u8; 256]).collect();
    let mut rng = ChaChaRng::seed_from_u64(42);
    let server = RemoteServer::connect(daemon.local_addr()).expect("connect to daemon");
    let mut ram = DpRam::setup(DpRamConfig::recommended(n), &blocks, server, &mut rng)
        .expect("setup with valid parameters");

    // 3. Same constant-overhead accesses, now with real bytes on a real
    //    wire: each query is 2 downloads + 1 upload in 3 framed round
    //    trips, whatever the record index.
    let before = ram.server_stats();
    for i in [7usize, 99, 1023] {
        let value = ram.read(i, &mut rng).expect("read over the wire");
        assert_eq!(value, blocks[i]);
    }
    ram.write(512, vec![0xAB; 256], &mut rng)
        .expect("write over the wire");
    let cost = ram.server_stats().since(&before);

    // 4. The model counters match the in-process run bit-for-bit; the
    //    new wire_* counters show what the network actually carried.
    println!(
        "4 ops: {} downloads + {} uploads over {} model round trips",
        cost.downloads, cost.uploads, cost.round_trips
    );
    println!(
        "wire: {} framed exchanges, {} B up, {} B down",
        cost.wire_round_trips, cost.wire_bytes_up, cost.wire_bytes_down
    );
    // Data ops map one-to-one onto framed exchanges; the only extra
    // exchange in the window is the closing stats query itself.
    assert_eq!(cost.round_trips, cost.wire_round_trips - 1);
    println!("model view identical to the in-process run: stats().sans_wire()");

    daemon.shutdown();
}
