//! Private ad retrieval with DP-IR — the advertising scenario from the
//! paper's introduction ([30]: privately reporting ad impressions).
//!
//! An ad server hosts a public catalog of creatives. Clients fetch the
//! creative for a targeting segment; which segment a user falls in is
//! sensitive, but the catalog itself is public. DP-IR hides the fetched
//! index inside a constant-size decoy set at ε = Θ(log n) and tolerates a
//! small error rate (the client simply shows a house ad on error) — at a
//! tiny fraction of PIR's linear cost.
//!
//! ```text
//! cargo run --release --example private_ad_serving
//! ```

use dp_storage::core::dp_ir::{DpIr, DpIrConfig};
use dp_storage::crypto::ChaChaRng;
use dp_storage::pir::FullScanPir;
use dp_storage::server::SimServer;

fn main() {
    let n = 4096; // targeting segments
    let creative_size = 2048; // bytes per ad creative
    let catalog: Vec<Vec<u8>> = (0..n).map(|i| vec![(i % 251) as u8; creative_size]).collect();

    // Tolerate 5% errors (house ad fallback), target ε = ln n.
    let alpha = 0.05;
    let epsilon = (n as f64).ln();
    let config = DpIrConfig::with_epsilon(n, epsilon, alpha).expect("valid parameters");
    println!(
        "DP-IR ad catalog: n = {n}, ε = {:.2} (= ln n), α = {alpha}, K = {} creatives/request",
        epsilon, config.k
    );

    let mut ir = DpIr::setup(config, &catalog, SimServer::new()).expect("setup");
    let mut rng = ChaChaRng::seed_from_u64(7);

    let requests = 1000;
    let mut served = 0;
    let mut house_ads = 0;
    for user in 0..requests {
        let segment = user * 37 % n; // this user's (sensitive) segment
        match ir.query(segment, &mut rng).expect("segment in range") {
            Some(creative) => {
                assert_eq!(creative[0], (segment % 251) as u8);
                served += 1;
            }
            None => house_ads += 1, // the α-error case
        }
    }
    let stats = ir.server_stats();
    println!(
        "{requests} requests: {served} targeted, {house_ads} house-ad fallbacks ({:.1}%)",
        100.0 * house_ads as f64 / requests as f64
    );
    println!(
        "bandwidth: {:.1} creatives/request ({:.1} KiB), {} round trip",
        stats.downloads as f64 / requests as f64,
        stats.bytes_down as f64 / requests as f64 / 1024.0,
        1
    );

    // The PIR alternative for the same catalog: every request downloads (or
    // makes the server compute over) all n creatives.
    let mut pir = FullScanPir::setup(&catalog, SimServer::new());
    pir.query(0).expect("query");
    let pir_stats = pir.server_stats();
    println!(
        "full PIR baseline: {} creatives/request ({:.0} KiB) — {}x more bandwidth for oblivious (vs ε = ln n) privacy",
        pir_stats.downloads,
        pir_stats.bytes_down as f64 / 1024.0,
        pir_stats.downloads / (stats.downloads / requests as u64).max(1)
    );
}
