//! The paper's motivating pipeline, end to end: differentially private
//! *access* to an outsourced database composed with a differentially
//! private *disclosure* of the computed statistic.
//!
//! Section 1: "suppose we wish to disclose a differentially private model
//! trained over a sample from the database. Obliviousness would
//! unnecessarily hide the identity of the entire retrieved sample at a
//! high cost yet the differential privacy would guarantee the privacy
//! about individuals in the sample."
//!
//! This example plays a health-analytics service:
//!  1. a hospital outsources `n` patient records to an untrusted store;
//!  2. an analyst samples records through **batched DP-IR** (ε_access =
//!     Θ(log n) per retrieval, one round trip for the whole sample, the
//!     server sees only a noised download set);
//!  3. the analyst releases the sample's mean biomarker through the
//!     **Laplace mechanism** (ε_release on the output side);
//!  4. composition accounting reports the total budget spent.
//!
//! ```text
//! cargo run --release --example private_analytics
//! ```

use dp_storage::analysis::composition::{basic, PrivacyBudget};
use dp_storage::analysis::LaplaceMechanism;
use dp_storage::core::batched_ir::BatchedDpIr;
use dp_storage::core::dp_ir::DpIrConfig;
use dp_storage::crypto::ChaChaRng;
use dp_storage::server::SimServer;

/// A patient record: 8-byte id, 1-byte biomarker in [0, 100], padding.
fn record(id: u64, biomarker: u8) -> Vec<u8> {
    let mut r = vec![0u8; 64];
    r[..8].copy_from_slice(&id.to_le_bytes());
    r[8] = biomarker;
    r
}

fn biomarker(record: &[u8]) -> f64 {
    f64::from(record[8])
}

fn main() {
    let mut rng = ChaChaRng::seed_from_u64(2026);

    // 1. The outsourced database: n records, biomarkers drawn 20..80.
    let n = 4096;
    let db: Vec<Vec<u8>> = (0..n as u64)
        .map(|id| record(id, 20 + (rng.gen_range(61)) as u8))
        .collect();
    let true_mean = db.iter().map(|r| biomarker(r)).sum::<f64>() / n as f64;
    println!("outsourced {n} patient records (true mean biomarker {true_mean:.2})");

    // 2. DP-IR access: eps_access = ln n gives constant downloads/query.
    let alpha = 0.1;
    let access_config =
        DpIrConfig::with_epsilon(n, (n as f64).ln() - 2.0, alpha).expect("valid DP-IR parameters");
    let mut store = BatchedDpIr::setup(access_config, &db, SimServer::new())
        .expect("setup over the outsourced records");
    println!(
        "DP-IR access: eps = {:.2} per retrieval, K = {} blocks/query, error alpha = {alpha}",
        store.config().epsilon(),
        store.config().k
    );

    // 3. Sample m records in ONE round trip.
    let m = 256;
    let sample_ids: Vec<usize> = (0..m).map(|_| rng.gen_index(n)).collect();
    let before = store.server_stats();
    let results = store
        .query_batch(&sample_ids, &mut rng)
        .expect("indices validated above");
    let cost = store.server_stats().since(&before);
    let sample: Vec<f64> = results.iter().flatten().map(|r| biomarker(r)).collect();
    println!(
        "sampled {} of {m} requested records ({} lost to the designed alpha-error) — {} blocks, {} round trip(s)",
        sample.len(),
        m - sample.len(),
        cost.downloads,
        cost.round_trips
    );

    // 4. eps-DP disclosure of the sample mean. Sensitivity of a mean over
    //    |sample| values in [0, 100] is 100/|sample|.
    let eps_release = 0.5;
    let mechanism = LaplaceMechanism::new(100.0 / sample.len() as f64, eps_release);
    let sample_mean = sample.iter().sum::<f64>() / sample.len() as f64;
    let released = mechanism.release(sample_mean, &mut rng);
    println!(
        "released mean biomarker: {released:.2} (sample mean {sample_mean:.2}, true {true_mean:.2})"
    );
    println!(
        "release accuracy: ±{:.2} expected, ±{:.2} at 95% confidence",
        mechanism.expected_absolute_error(),
        mechanism.error_bound(0.05)
    );

    // 5. Composition accounting: the server-side view is eps_access-DP per
    //    changed retrieval (batching does not stack: only the changed
    //    query's download set moves); the published number costs
    //    eps_release. A single patient's record affects one retrieval and
    //    the release, so the per-patient budget is:
    let per_patient = basic(PrivacyBudget::pure(store.config().epsilon()), 1);
    let total = PrivacyBudget::pure(per_patient.epsilon + eps_release);
    println!(
        "per-patient budget: access {} + release ε = {eps_release} => total {total}",
        per_patient
    );
    println!(
        "(an oblivious scheme would need Ω(log n) = {:.0} blocks/query or Θ(n) server work to hide the sample identity the release does not even protect)",
        (n as f64).log2()
    );
}
