//! Private contact discovery with DP-KVS — the identity-discovery scenario
//! from the paper's introduction ([8]: DP5, a private presence service).
//!
//! A messaging service stores a directory keyed by hashed phone numbers
//! (a huge, sparse universe). Clients look up contacts to learn whether
//! they are registered — and most lookups miss. The service must not learn
//! *which* contact was looked up, nor whether it hit. DP-KVS serves both
//! hits and misses with identical `O(log log n)` transcripts at
//! ε = Θ(log n), exponentially cheaper than ORAM-backed directories.
//!
//! ```text
//! cargo run --release --example contact_discovery
//! ```

use dp_storage::core::dp_kvs::{DpKvs, DpKvsConfig};
use dp_storage::crypto::ChaChaRng;
use dp_storage::oram::OramKvs;
use dp_storage::server::SimServer;
use dp_storage::workloads::generators::key_universe;

fn main() {
    let capacity = 2048; // registered users the shard can hold
    let profile_size = 64; // bytes: presence record / key bundle

    let mut rng = ChaChaRng::seed_from_u64(99);
    let config = DpKvsConfig::recommended(capacity, profile_size);
    println!(
        "DP-KVS directory: capacity = {capacity}, tree depth s(n) = {} (Θ(log log n)), server cells = {} ({}x n)",
        config.geometry.depth(),
        config.geometry.total_nodes(),
        config.geometry.total_nodes() / capacity
    );
    let mut directory =
        DpKvs::setup(config, SimServer::new(), &mut rng).expect("setup with valid parameters");

    // Register 1000 users under hashed identifiers.
    let registered = key_universe(1000, &mut rng);
    for (i, &user) in registered.iter().enumerate() {
        directory
            .put(user, vec![(i % 251) as u8; profile_size], &mut rng)
            .expect("capacity not exceeded");
    }
    println!(
        "registered {} users; super-root load = {}",
        directory.len(),
        directory.super_root_load()
    );

    // A client checks its address book: 20 contacts, most not registered.
    let mut found = 0;
    let mut missed = 0;
    let before = directory.server_stats();
    for i in 0..20 {
        let contact = if i % 4 == 0 {
            registered[i * 13 % registered.len()] // a registered friend
        } else {
            rng.next_u64() // not a user (lookup miss)
        };
        match directory.get(contact, &mut rng).expect("lookup") {
            Some(profile) => {
                assert_eq!(profile.len(), profile_size);
                found += 1;
            }
            None => missed += 1,
        }
    }
    let diff = directory.server_stats().since(&before);
    println!(
        "address book sync: {found} found, {missed} not registered — every lookup moved {:.0} cells over {} round trips (hit/miss indistinguishable)",
        (diff.downloads + diff.uploads) as f64 / 20.0,
        diff.round_trips / 20
    );

    // ORAM-backed directory baseline at the same capacity.
    let mut oram_dir = OramKvs::new(capacity, profile_size, &mut rng);
    for (i, &user) in registered.iter().enumerate() {
        oram_dir
            .put(user, vec![(i % 251) as u8; profile_size], &mut rng)
            .expect("capacity");
    }
    let before = oram_dir.server_stats();
    for &user in registered.iter().take(20) {
        oram_dir.get(user, &mut rng).expect("lookup");
    }
    let diff = oram_dir.server_stats().since(&before);
    println!(
        "ORAM-KVS baseline: {:.0} blocks/lookup — the Θ(log n) vs Θ(log log n) separation of Theorem 7.5",
        (diff.downloads + diff.uploads) as f64 / 20.0
    );
}
