//! Active-security hardening: DP-RAM against a server that lies.
//!
//! The paper's model is honest-but-curious: the server observes access
//! patterns but stores faithfully. A real deployment also needs to
//! *detect* a server that corrupts, swaps, or rolls back cells. This
//! example runs the hardened DP-RAM (address-bound ChaCha20-Poly1305 AEAD
//! plus a Merkle root in client state) through all three attacks and shows
//! that the overhead the paper counts (blocks moved per query) is
//! unchanged.
//!
//! ```text
//! cargo run --release --example hardened_storage
//! ```

use dp_storage::core::dp_ram::{DpRam, DpRamConfig};
use dp_storage::core::hardened_ram::{HardenedDpRam, HardenedRamError};
use dp_storage::crypto::ChaChaRng;
use dp_storage::server::SimServer;

fn main() {
    let mut rng = ChaChaRng::seed_from_u64(7);
    let n = 1024;
    let block = 256;
    let db: Vec<Vec<u8>> = (0..n).map(|i| vec![(i % 251) as u8; block]).collect();

    // Use p = 0 for the demo so reads deterministically hit their own
    // address (makes the attacked cell easy to target). Production uses
    // DpRamConfig::recommended(n).
    let config = DpRamConfig { n, stash_probability: 0.0 };

    // ---- Cost parity with the paper's scheme ----
    let mut plain = DpRam::setup(DpRamConfig::recommended(n), &db, SimServer::new(), &mut rng)
        .expect("valid parameters");
    let mut hardened =
        HardenedDpRam::setup(DpRamConfig::recommended(n), &db, &mut rng).expect("valid parameters");
    let (b1, b2) = (plain.server_stats(), hardened.server_stats());
    for i in 0..200 {
        plain.read(i % n, &mut rng).unwrap();
        hardened.read(i % n, &mut rng).unwrap();
    }
    let (d1, d2) = (plain.server_stats().since(&b1), hardened.server_stats().since(&b2));
    println!("200 reads each:");
    println!(
        "  paper DP-RAM   : {} downloads, {} uploads, {} round trips",
        d1.downloads, d1.uploads, d1.round_trips
    );
    println!(
        "  hardened DP-RAM: {} downloads, {} uploads, {} round trips  (identical by design)",
        d2.downloads, d2.uploads, d2.round_trips
    );

    // ---- Attack 1: bit-flip corruption ----
    let mut ram = HardenedDpRam::setup(config, &db, &mut rng).expect("valid parameters");
    let victim = 77;
    let cell = ram.server_mut().adversary_cells_mut().read(victim).unwrap();
    let mut corrupted = cell.clone();
    corrupted[30] ^= 0x40;
    ram.server_mut()
        .adversary_cells_mut()
        .write(victim, corrupted)
        .unwrap();
    report("bit-flip corruption", ram.read(victim, &mut rng));

    // ---- Attack 2: cell swap (authentic ciphertexts, wrong places) ----
    let mut ram = HardenedDpRam::setup(config, &db, &mut rng).expect("valid parameters");
    let a = ram.server_mut().adversary_cells_mut().read(10).unwrap();
    let b = ram.server_mut().adversary_cells_mut().read(20).unwrap();
    ram.server_mut().adversary_cells_mut().write(10, b).unwrap();
    ram.server_mut().adversary_cells_mut().write(20, a).unwrap();
    report("cell swap", ram.read(10, &mut rng));

    // ---- Attack 3: rollback (replay a stale-but-authentic cell) ----
    let mut ram = HardenedDpRam::setup(config, &db, &mut rng).expect("valid parameters");
    let stale = ram.server_mut().adversary_cells_mut().read(5).unwrap();
    ram.write(5, vec![0xAA; block], &mut rng).unwrap(); // client updates...
    ram.server_mut().adversary_cells_mut().write(5, stale).unwrap(); // ...server replays
    report("rollback/replay", ram.read(5, &mut rng));

    println!("\nall three active attacks surfaced as typed errors; an unhardened client would have read wrong data (or garbage) silently trusted.");
}

fn report(attack: &str, outcome: Result<Vec<u8>, HardenedRamError>) {
    match outcome {
        Err(HardenedRamError::Tampering { addr, detected_by }) => {
            println!("attack '{attack}': DETECTED at address {addr} (by {detected_by:?})");
        }
        Err(other) => println!("attack '{attack}': rejected with {other}"),
        Ok(_) => println!("attack '{attack}': NOT DETECTED — data silently served!"),
    }
}
