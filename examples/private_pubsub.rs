//! Private publish-subscribe with DP-RAM — the pub/sub scenario from the
//! paper's introduction ([18]: Talek, a private publish-subscribe
//! protocol).
//!
//! Publishers write into per-topic mailboxes; subscribers poll them. The
//! storage provider must not learn which topic a client touches, nor
//! whether an access was a publish (write) or a poll (read). DP-RAM hides
//! both at constant overhead — and this example also demonstrates the
//! adversary's-eye view by recording the server transcript.
//!
//! ```text
//! cargo run --release --example private_pubsub
//! ```

use dp_storage::core::dp_ram::{DpRam, DpRamConfig};
use dp_storage::crypto::ChaChaRng;
use dp_storage::server::{AccessEvent, SimServer};
use dp_storage::workloads::Op;

const MAILBOX_SIZE: usize = 512;
const TOPICS: usize = 256;

fn main() {
    // One mailbox per topic, all initially empty.
    let mailboxes: Vec<Vec<u8>> = vec![vec![0u8; MAILBOX_SIZE]; TOPICS];
    let mut rng = ChaChaRng::seed_from_u64(2024);
    let mut board =
        DpRam::setup(DpRamConfig::recommended(TOPICS), &mailboxes, SimServer::new(), &mut rng)
            .expect("setup");

    // Record the adversary's view while clients work.
    board.server_mut().start_recording();

    // Publisher posts to the "incident-42" topic (topic 42).
    let mut message = vec![0u8; MAILBOX_SIZE];
    message[..13].copy_from_slice(b"deploy frozen");
    board.write(42, message, &mut rng).expect("publish");

    // Unrelated subscribers poll other topics.
    for topic in [7usize, 99, 3, 200] {
        board.read(topic, &mut rng).expect("poll");
    }

    // The interested subscriber polls topic 42.
    let inbox = board.read(42, &mut rng).expect("poll");
    assert_eq!(&inbox[..13], b"deploy frozen");
    println!("subscriber received: {:?}", std::str::from_utf8(&inbox[..13]).unwrap());

    // What did the storage provider see? Addresses only — and thanks to
    // the stash + decoy dance, neither "topic 42 was hot" nor "the first
    // access was a write" is certain.
    let transcript = board.server_mut().take_transcript();
    println!("\nadversary transcript ({} round trips):", transcript.round_trips());
    for (i, batch) in transcript.batches().enumerate() {
        let rendered: Vec<String> = batch
            .iter()
            .map(|e| match e {
                AccessEvent::Download(a) => format!("down({a})"),
                AccessEvent::Upload(a) => format!("up({a})"),
                AccessEvent::Compute(a) => format!("compute({a})"),
            })
            .collect();
        println!("  rt{:02}: {}", i, rendered.join(" "));
    }
    println!(
        "\nevery operation shows the same down/down+up shape; decoys appear with probability p = {:.3}.",
        board.config().stash_probability
    );
    println!(
        "6 operations cost {} blocks total — constant per op (Theorem 6.1), ε = O(log n).",
        board.server_stats().downloads + board.server_stats().uploads
    );

    // Writes and reads are indistinguishable: run both and compare shapes.
    board.server_mut().start_recording();
    board.read(10, &mut rng).expect("poll");
    let read_view = board.server_mut().take_transcript();
    board.server_mut().start_recording();
    board
        .write(10, vec![1u8; MAILBOX_SIZE], &mut rng)
        .expect("publish");
    let write_view = board.server_mut().take_transcript();
    let shape = |t: &dp_storage::server::Transcript| {
        t.batches()
            .map(|b| {
                b.iter()
                    .map(|e| matches!(e, AccessEvent::Upload(_)))
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(shape(&read_view), shape(&write_view));
    println!("verified: a publish and a poll produce identically-shaped transcripts.");

    let _ = Op::Read; // (re-exported workload types available for trace tooling)
}
