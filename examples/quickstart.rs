//! Quickstart: outsource a database with DP-RAM and access it with
//! constant overhead.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dp_storage::core::dp_ram::{DpRam, DpRamConfig};
use dp_storage::crypto::ChaChaRng;
use dp_storage::server::SimServer;

fn main() {
    // 1. A database of 1024 records of 256 bytes.
    let n = 1024;
    let blocks: Vec<Vec<u8>> = (0..n).map(|i| vec![(i % 251) as u8; 256]).collect();

    // 2. Set up DP-RAM with the paper-recommended parameters:
    //    p = log2(n)^2 / n, giving eps = O(log n) privacy, O(1) overhead.
    let mut rng = ChaChaRng::seed_from_u64(42);
    let config = DpRamConfig::recommended(n);
    println!(
        "DP-RAM over n = {n}: stash probability p = {:.5} (expected stash Φ(n) = {:.0} blocks)",
        config.stash_probability,
        config.expected_stash()
    );
    let mut ram = DpRam::setup(config, &blocks, SimServer::new(), &mut rng)
        .expect("setup with valid parameters");

    // 3. Read and write records. Every operation moves exactly 2 downloads
    //    and 1 upload, no matter what.
    let value = ram.read(42, &mut rng).expect("read in range");
    assert_eq!(value, vec![42u8; 256]);
    println!("read record 42: {} bytes", value.len());

    ram.write(42, vec![0xAB; 256], &mut rng).expect("write in range");
    assert_eq!(ram.read(42, &mut rng).unwrap(), vec![0xAB; 256]);
    println!("overwrote record 42 and read it back");

    // 4. Inspect the cost: constant per query.
    let before = ram.server_stats();
    for i in 0..100 {
        ram.read(i % n, &mut rng).unwrap();
    }
    let diff = ram.server_stats().since(&before);
    println!(
        "100 queries: {} downloads, {} uploads, {} round trips ({} blocks/query)",
        diff.downloads,
        diff.uploads,
        diff.round_trips,
        (diff.downloads + diff.uploads) as f64 / 100.0
    );
    println!("client stash currently holds {} blocks (bound: O(Φ(n)) whp)", ram.stash_size());
    println!(
        "privacy: pure ε-DP with ε = O(log n) (proof's loose upper bound: {:.1})",
        ram.config().epsilon_upper_bound()
    );
}
