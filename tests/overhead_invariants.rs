//! Integration tests pinning the paper's overhead claims as invariants,
//! measured through the server's own accounting (not the schemes'
//! self-reports).

use dp_storage::analysis::bounds;
use dp_storage::core::dp_ir::{DpIr, DpIrConfig};
use dp_storage::core::dp_kvs::{DpKvs, DpKvsConfig};
use dp_storage::core::dp_ram::{DpRam, DpRamConfig};
use dp_storage::crypto::ChaChaRng;
use dp_storage::oram::{PathOram, PathOramConfig};
use dp_storage::server::{AccessEvent, SimServer};
use dp_storage::workloads::generators::database;

/// Theorem 6.1: DP-RAM moves exactly 2 downloads + 1 upload per query at
/// every size — verified against the raw server transcript.
#[test]
fn dp_ram_transcript_is_exactly_two_downloads_one_upload() {
    for n in [16usize, 256, 2048] {
        let db = database(n, 16);
        let mut rng = ChaChaRng::seed_from_u64(n as u64);
        let mut ram =
            DpRam::setup(DpRamConfig::recommended(n), &db, SimServer::new(), &mut rng).unwrap();
        ram.server_mut().start_recording();
        for q in 0..20 {
            ram.read(q % n, &mut rng).unwrap();
        }
        let transcript = ram.server_mut().take_transcript();
        assert_eq!(transcript.round_trips(), 60, "3 RTs per query, n = {n}");
        let events: Vec<AccessEvent> = transcript.events().collect();
        assert_eq!(events.len(), 60, "3 events per query, n = {n}");
        for chunk in events.chunks(3) {
            assert!(matches!(chunk[0], AccessEvent::Download(_)));
            assert!(matches!(chunk[1], AccessEvent::Download(_)));
            assert!(matches!(chunk[2], AccessEvent::Upload(_)));
            // Overwrite phase touches one address twice (down then up).
            assert_eq!(chunk[1].address(), chunk[2].address());
        }
    }
}

/// Theorem 5.1: DP-IR's download count matches the formula, and the
/// formula in dps-analysis stays in sync with dps-core.
#[test]
fn dp_ir_k_formula_in_sync_across_crates() {
    for n in [64usize, 1024, 65536] {
        for epsilon in [1.0, 3.0, (n as f64).ln()] {
            for alpha in [0.05, 0.25] {
                let core_k = DpIrConfig::with_epsilon(n, epsilon, alpha).unwrap().k;
                let analysis_k = bounds::thm_5_1_download_count(n, epsilon, alpha);
                assert_eq!(core_k, analysis_k, "n={n} eps={epsilon} alpha={alpha}");
            }
        }
    }
}

/// The construction beats the Theorem 3.4 lower bound by at most a small
/// constant factor — asymptotic optimality, concretely.
#[test]
fn dp_ir_is_within_constant_of_lower_bound() {
    let alpha = 0.1;
    for n in [1usize << 10, 1 << 14, 1 << 18] {
        for epsilon in [2.0, (n as f64).ln() / 2.0, (n as f64).ln()] {
            let k = DpIrConfig::with_epsilon(n, epsilon, alpha).unwrap().k as f64;
            let lb = bounds::thm_3_4_ir_ops(n, epsilon, alpha, 0.0);
            assert!(k <= 4.0 * lb.max(1.0), "n={n} eps={epsilon}: K = {k} vs bound {lb}");
            assert!(k >= lb * 0.5, "construction cannot beat the bound meaningfully");
        }
    }
}

/// DP-RAM's 3 blocks/query must sit above the Theorem 3.7 bound at its own
/// epsilon — i.e. the construction is *feasible*, and at ε = Θ(log n) the
/// bound permits O(1).
#[test]
fn dp_ram_cost_is_feasible_per_thm_3_7() {
    let n = 1 << 14;
    let config = DpRamConfig::recommended(n);
    let phi = config.expected_stash().ceil() as usize;
    // At the construction's epsilon (O(log n)), the bound must be <= 3.
    let eps = config.epsilon_upper_bound();
    let bound = bounds::thm_3_7_ram_ops(n, eps, 0.0, phi.max(2));
    assert!(bound <= 3.0, "at eps = {eps:.1} the Thm 3.7 bound is {bound:.2} > 3 — contradiction");
    // At constant epsilon the bound must *exceed* 3: constant overhead
    // impossible.
    let bound_low_eps = bounds::thm_3_7_ram_ops(n, 1.0, 0.0, 4);
    assert!(bound_low_eps > 3.0, "bound at eps=1: {bound_low_eps}");
}

/// Theorem 7.5: DP-KVS server storage is O(n) cells and per-op bandwidth
/// is proportional to tree depth (Θ(log log n)), while Path ORAM pays
/// Θ(log n) — checked end to end through server counters.
#[test]
fn dp_kvs_overhead_scales_as_loglog_vs_oram_log() {
    let mut rng = ChaChaRng::seed_from_u64(4);
    let mut prev_depth = 0;
    for n in [1usize << 8, 1 << 12] {
        let config = DpKvsConfig::recommended(n, 32);
        // Server storage linear in n.
        assert!(
            config.geometry.total_nodes() <= 6 * n,
            "server cells {} not O(n = {n})",
            config.geometry.total_nodes()
        );
        let depth = config.geometry.depth();
        assert!(depth >= prev_depth, "depth must be non-decreasing in n");
        prev_depth = depth;

        let mut kvs = DpKvs::setup(config, SimServer::new(), &mut rng).unwrap();
        kvs.put(1, vec![0u8; 32], &mut rng).unwrap();
        let before = kvs.server_stats();
        kvs.get(1, &mut rng).unwrap();
        let d = kvs.server_stats().since(&before);
        let kvs_cells = d.downloads + d.uploads;
        assert_eq!(kvs_cells, 12 * depth as u64, "4 bucket queries x 3 x depth");

        // Path ORAM at the same n moves Z * levels * 2 blocks.
        let db = database(n, 32);
        let mut oram =
            PathOram::setup(PathOramConfig::recommended(n, 32), &db, SimServer::new(), &mut rng);
        let before = oram.server_stats();
        oram.read(0, &mut rng).unwrap();
        let d = oram.server_stats().since(&before);
        let oram_blocks = d.downloads + d.uploads;
        // log log n grows much slower than log n; at n = 2^12 the KVS depth
        // is ~5 while the ORAM path is 13 levels.
        assert!((depth as u64) < oram_blocks, "depth {depth} vs ORAM blocks {oram_blocks}");
    }
}

/// DP-IR at ε = ln n stays O(1) blocks while the errorless bound demands n:
/// the headline separation of the paper, end to end.
#[test]
fn errorless_vs_erroring_separation() {
    let n = 1 << 12;
    let db = database(n, 16);
    let mut rng = ChaChaRng::seed_from_u64(5);
    let config = DpIrConfig::with_epsilon(n, (n as f64).ln(), 0.1).unwrap();
    assert!(config.k <= 2, "K must be O(1) at eps = ln n");
    let mut ir = DpIr::setup(config, &db, SimServer::new()).unwrap();
    let before = ir.server_stats();
    for q in 0..50 {
        ir.query(q % n, &mut rng).unwrap();
    }
    let per_query = ir.server_stats().since(&before).downloads as f64 / 50.0;
    let errorless_bound = bounds::thm_3_3_errorless_ir_ops(n, 0.0);
    assert!(per_query * 100.0 < errorless_bound, "separation must be >= 100x at n = 4096");
}
