//! Integration invariants for the extension modules: batched DP-IR,
//! square-root / recursive ORAM, composition accounting, and the latency
//! model — checked across crate boundaries.

use dp_storage::analysis::composition::{basic, PrivacyBudget};
use dp_storage::core::batched_ir::BatchedDpIr;
use dp_storage::core::dp_ir::{DpIr, DpIrConfig};
use dp_storage::core::dp_kvs::{DpKvs, DpKvsConfig};
use dp_storage::crypto::ChaChaRng;
use dp_storage::oram::{
    PathOram, PathOramConfig, RecursiveOramConfig, RecursivePathOram, SquareRootOram,
};
use dp_storage::server::{NetworkModel, SimServer};
use dp_storage::workloads::generators::database;

/// Batched DP-IR must agree record-for-record with single-query DP-IR: the
/// batch is a packaging of Algorithm 1, not a different scheme.
#[test]
fn batched_ir_matches_single_query_semantics() {
    let n = 128;
    let db = database(n, 16);
    let config = DpIrConfig::with_epsilon(n, 4.0, 0.1).unwrap();
    let mut single = DpIr::setup(config, &db, SimServer::new()).unwrap();
    let mut batched = BatchedDpIr::setup(config, &db, SimServer::new()).unwrap();
    let mut rng = ChaChaRng::seed_from_u64(1);

    for round in 0..30 {
        let indices: Vec<usize> = (0..8).map(|j| (round * 8 + j) % n).collect();
        let batch_results = batched.query_batch(&indices, &mut rng).unwrap();
        for (j, result) in batch_results.iter().enumerate() {
            if let Some(record) = result {
                assert_eq!(*record, db[indices[j]], "round {round} slot {j}");
            }
            // Cross-check the same index through the single-query API.
            if let Some(record) = single.query(indices[j], &mut rng).unwrap() {
                assert_eq!(record, db[indices[j]]);
            }
        }
    }
}

/// All three ORAM variants return identical data under the same logical
/// workload — the baselines disagree only in cost, never in semantics.
#[test]
fn oram_variants_agree_on_contents() {
    let n = 80;
    let db = database(n, 16);
    let mut rng = ChaChaRng::seed_from_u64(2);
    let mut path =
        PathOram::setup(PathOramConfig::recommended(n, 16), &db, SimServer::new(), &mut rng);
    let mut recursive = RecursivePathOram::setup(
        RecursiveOramConfig { n, block_size: 16, bucket_size: 4, pack: 8, client_map_limit: 8 },
        &db,
        &mut rng,
    );
    let mut sqrt = SquareRootOram::setup(&db, SimServer::new(), &mut rng);
    let mut reference = db.clone();

    for step in 0u32..200 {
        let i = rng.gen_index(n);
        if rng.gen_bool(0.4) {
            let v = vec![(step % 256) as u8; 16];
            path.write(i, v.clone(), &mut rng).unwrap();
            recursive.write(i, v.clone(), &mut rng).unwrap();
            sqrt.write(i, v.clone(), &mut rng).unwrap();
            reference[i] = v;
        } else {
            assert_eq!(path.read(i, &mut rng).unwrap(), reference[i], "path, step {step}");
            assert_eq!(
                recursive.read(i, &mut rng).unwrap(),
                reference[i],
                "recursive, step {step}"
            );
            assert_eq!(sqrt.read(i, &mut rng).unwrap(), reference[i], "sqrt, step {step}");
        }
    }
}

/// The round-trip hierarchy the paper's comparison rests on:
/// DP-RAM-style O(1) < client-posmap Path ORAM (2) < recursive Path ORAM
/// (2·levels), measured, not assumed.
#[test]
fn round_trip_hierarchy_is_measured() {
    let n = 1 << 10;
    let db = database(n, 32);
    let mut rng = ChaChaRng::seed_from_u64(3);

    let mut path =
        PathOram::setup(PathOramConfig::recommended(n, 32), &db, SimServer::new(), &mut rng);
    let mut recursive = RecursivePathOram::setup(
        RecursiveOramConfig { n, block_size: 32, bucket_size: 4, pack: 8, client_map_limit: 8 },
        &db,
        &mut rng,
    );

    let before = path.server_stats();
    path.read(0, &mut rng).unwrap();
    let path_rt = path.server_stats().since(&before).round_trips;

    let before = recursive.total_stats();
    recursive.read(0, &mut rng).unwrap();
    let rec_rt = recursive.total_stats().since(&before).round_trips;

    assert_eq!(path_rt, 2);
    assert_eq!(rec_rt, recursive.round_trips_per_access() as u64);
    assert!(rec_rt >= 2 * 3, "1024 blocks at pack 8 needs >= 3 levels");

    // And the latency model orders them accordingly on a WAN.
    let wan = NetworkModel::wan();
    let path_us = wan
        .estimate_us(&dp_storage::server::CostStats { round_trips: path_rt, ..Default::default() });
    let rec_us = wan
        .estimate_us(&dp_storage::server::CostStats { round_trips: rec_rt, ..Default::default() });
    assert!(rec_us > path_us);
}

/// Theorem 7.1's composition arithmetic, cross-checked against the live
/// DP-KVS: a KVS op issues 4 bucket queries, so its budget is exactly
/// `basic(per_query, 4)` — and the underlying bucket repertoire size is
/// what the per-query ε is logarithmic in.
#[test]
fn kvs_budget_composes_from_bucket_queries() {
    let n = 256;
    let mut rng = ChaChaRng::seed_from_u64(4);
    let mut kvs = DpKvs::setup(DpKvsConfig::recommended(n, 8), SimServer::new(), &mut rng).unwrap();

    // Count bucket queries per op via round trips: each bucket query is 3.
    kvs.put(1, vec![0u8; 8], &mut rng).unwrap();
    let before = kvs.server_stats();
    kvs.get(1, &mut rng).unwrap();
    let rt = kvs.server_stats().since(&before).round_trips;
    assert_eq!(rt, 12, "4 bucket queries x 3 round trips");

    let per_bucket_query = PrivacyBudget::pure((n as f64).ln());
    let per_op = basic(per_bucket_query, 4);
    assert!((per_op.epsilon - 4.0 * (n as f64).ln()).abs() < 1e-12);
    assert_eq!(per_op.delta, 0.0);
}

/// Square-root ORAM's amortized cost formula is honest: measured blocks
/// per query over whole epochs match `amortized_blocks_per_query`.
#[test]
fn square_root_amortization_formula_is_exact_over_epochs() {
    let n = 144; // s = 12
    let db = database(n, 16);
    let mut rng = ChaChaRng::seed_from_u64(5);
    let mut oram = SquareRootOram::setup(&db, SimServer::new(), &mut rng);
    let s = oram.shelter_size();
    let queries = 4 * s; // exactly 4 epochs
    let before = oram.server_stats();
    for q in 0..queries {
        oram.read(q % n, &mut rng).unwrap();
    }
    let diff = oram.server_stats().since(&before);
    let measured = (diff.downloads + diff.uploads) as f64 / queries as f64;
    let predicted = oram.amortized_blocks_per_query();
    // Shelter scans grow 0..s-1 within an epoch (avg (s-1)/2 + 2 per query
    // vs the formula's worst-case s + 2), so measured <= predicted and
    // within the scan-averaging slack of s/2 + 1.
    assert!(measured <= predicted, "{measured} > {predicted}");
    assert!(predicted - measured <= s as f64 / 2.0 + 1.5, "{measured} too far below {predicted}");
}
