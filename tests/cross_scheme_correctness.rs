//! Cross-crate integration: every storage scheme in the workspace must
//! agree with a plain in-memory reference under one shared random workload.

use dp_storage::core::dp_ir::{DpIr, DpIrConfig};
use dp_storage::core::dp_kvs::{DpKvs, DpKvsConfig};
use dp_storage::core::dp_ram::{DpRam, DpRamConfig};
use dp_storage::core::dp_ram_ro::DpRamReadOnly;
use dp_storage::core::multi_server::{MultiServerDpIr, MultiServerDpIrConfig};
use dp_storage::crypto::ChaChaRng;
use dp_storage::oram::{LinearOram, OramKvs, PathOram, PathOramConfig};
use dp_storage::pir::{FullScanPir, XorPir};
use dp_storage::server::SimServer;
use dp_storage::workloads::generators::{database, payload_for};

const N: usize = 64;
const BLOCK: usize = 32;

/// Read-only schemes: every successful retrieval must return the exact
/// stored record.
#[test]
fn retrieval_schemes_agree_on_static_database() {
    let db = database(N, BLOCK);
    let mut rng = ChaChaRng::seed_from_u64(1);

    let mut dp_ir =
        DpIr::setup(DpIrConfig::with_epsilon(N, 4.0, 0.1).unwrap(), &db, SimServer::new()).unwrap();
    let mut multi =
        MultiServerDpIr::setup(MultiServerDpIrConfig { n: N, servers: 3, k: 4, alpha: 0.1 }, &db)
            .unwrap();
    let mut scan = FullScanPir::setup(&db, SimServer::new());
    let mut xor = XorPir::setup(&db);
    let mut ro = DpRamReadOnly::setup(&db, 0.3, SimServer::new(), &mut rng);

    for step in 0..200 {
        let i = step % N;
        let expected = payload_for(i as u64, BLOCK);
        if let Some(got) = dp_ir.query(i, &mut rng).unwrap() {
            assert_eq!(got, expected, "DP-IR step {step}");
        }
        if let Some(got) = multi.query(i, &mut rng).unwrap() {
            assert_eq!(got, expected, "multi-server step {step}");
        }
        assert_eq!(scan.query(i).unwrap(), expected, "full-scan step {step}");
        assert_eq!(xor.query(i, &mut rng).unwrap(), expected, "xor-pir step {step}");
        assert_eq!(ro.read(i, &mut rng).unwrap(), expected, "ro-ram step {step}");
    }
}

/// Mutable schemes: DP-RAM, Path ORAM and linear ORAM must all track the
/// same reference array under the same logical workload.
#[test]
fn mutable_schemes_agree_under_shared_workload() {
    let db = database(N, BLOCK);
    let mut rng = ChaChaRng::seed_from_u64(2);

    let mut reference = db.clone();
    let mut dp_ram =
        DpRam::setup(DpRamConfig::recommended(N), &db, SimServer::new(), &mut rng).unwrap();
    let mut path =
        PathOram::setup(PathOramConfig::recommended(N, BLOCK), &db, SimServer::new(), &mut rng);
    let mut linear = LinearOram::setup(&db, SimServer::new(), &mut rng);

    for step in 0u32..300 {
        let i = rng.gen_index(N);
        if rng.gen_bool(0.4) {
            let value = vec![(step % 256) as u8; BLOCK];
            dp_ram.write(i, value.clone(), &mut rng).unwrap();
            path.write(i, value.clone(), &mut rng).unwrap();
            linear.write(i, value.clone(), &mut rng).unwrap();
            reference[i] = value;
        } else {
            assert_eq!(dp_ram.read(i, &mut rng).unwrap(), reference[i], "DP-RAM step {step}");
            assert_eq!(path.read(i, &mut rng).unwrap(), reference[i], "PathORAM step {step}");
            assert_eq!(linear.read(i, &mut rng).unwrap(), reference[i], "linear step {step}");
        }
    }
}

/// Key-value schemes: DP-KVS and ORAM-KVS must both track a HashMap
/// reference, including misses and deletions.
#[test]
fn kvs_schemes_agree_under_shared_workload() {
    let mut rng = ChaChaRng::seed_from_u64(3);
    let value_size = 16;
    let mut dp_kvs =
        DpKvs::setup(DpKvsConfig::recommended(N, value_size), SimServer::new(), &mut rng).unwrap();
    let mut oram_kvs = OramKvs::new(N, value_size, &mut rng);
    let mut reference: std::collections::HashMap<u64, Vec<u8>> = std::collections::HashMap::new();

    let keys: Vec<u64> = (0..40u64).map(|i| i * 0x1234_5678 + 5).collect();
    for step in 0u32..250 {
        let key = keys[rng.gen_index(keys.len())];
        match rng.gen_index(3) {
            0 => {
                let value = vec![(step % 256) as u8; value_size];
                dp_kvs.put(key, value.clone(), &mut rng).unwrap();
                oram_kvs.put(key, value.clone(), &mut rng).unwrap();
                reference.insert(key, value);
            }
            _ => {
                let expected = reference.get(&key).cloned();
                assert_eq!(dp_kvs.get(key, &mut rng).unwrap(), expected, "DP-KVS step {step}");
                assert_eq!(oram_kvs.get(key, &mut rng).unwrap(), expected, "ORAM-KVS step {step}");
            }
        }
    }
    assert_eq!(dp_kvs.len(), reference.len());
}

/// The umbrella crate's doc-quickstart path works end to end.
#[test]
fn umbrella_reexports_work() {
    let mut rng = dp_storage::crypto::ChaChaRng::seed_from_u64(7);
    let n = 256;
    let blocks: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 32]).collect();
    let server = dp_storage::server::SimServer::new();
    let mut ram = dp_storage::core::dp_ram::DpRam::setup(
        dp_storage::core::dp_ram::DpRamConfig::recommended(n),
        &blocks,
        server,
        &mut rng,
    )
    .unwrap();
    let value = ram.read(42, &mut rng).unwrap();
    assert_eq!(value, vec![42u8; 32]);
}
