//! Integration privacy audits: Monte-Carlo (ε, δ) estimation of each
//! scheme's transcript distribution on adjacent sequences. Trial counts are
//! sized for CI; the `experiments` binary runs the high-resolution
//! versions.

use dp_storage::analysis::audit_views;
use dp_storage::core::dp_ir::{DpIr, DpIrConfig};
use dp_storage::core::dp_ram::{DpRam, DpRamConfig};
use dp_storage::core::strawman::InsecureStrawmanIr;
use dp_storage::crypto::ChaChaRng;
use dp_storage::server::SimServer;
use dp_storage::workloads::generators::database;
use dp_storage::workloads::Op;

/// DP-IR: ε̂ must not exceed the analytic ε (within sampling slack) and δ̂
/// at the analytic ε must be ~0.
#[test]
fn dp_ir_honors_its_budget() {
    let n = 8;
    let alpha = 0.25;
    let config = DpIrConfig::with_epsilon(n, 1.5, alpha).unwrap();
    let view = |query: usize, base: u64| {
        move |trial: usize| {
            let mut rng = ChaChaRng::seed_from_u64(base + trial as u64);
            let db = database(n, 4);
            let mut ir = DpIr::setup(config, &db, SimServer::new()).unwrap();
            let (_, set) = ir.query_traced(query, &mut rng).unwrap();
            set.into_iter().map(|x| x as u8).collect()
        }
    };
    let report = audit_views(40_000, 30, view(1, 0), view(5, 1 << 32));
    let analytic = config.epsilon();
    assert!(
        report.epsilon_hat() <= analytic + 0.35,
        "ε̂ = {} exceeds analytic ε = {analytic}",
        report.epsilon_hat()
    );
    // At exactly the analytic ε the residual is pure sampling noise
    // (worst-case view ratios sit exactly on e^ε, so ~half the noise lands
    // above the cover: Σ_v p_v·O(1/√count_v) ≈ 1-2% at 40k trials). A hair
    // of ε-slack must absorb all of it; a real δ would not vanish.
    assert!(
        report.delta_at(analytic) < 0.04,
        "δ̂ = {} at the analytic budget is beyond sampling noise",
        report.delta_at(analytic)
    );
    assert!(
        report.delta_at(analytic + 0.2) < 1e-3,
        "δ̂ = {} persists past the sampling-noise margin — a genuine leak",
        report.delta_at(analytic + 0.2)
    );
}

/// The strawman must *fail* the audit with δ ≈ (n−1)/n — reproducing the
/// Section 4 negative result through the generic auditor.
#[test]
fn strawman_fails_the_audit() {
    let n = 16;
    let view = |query: usize, base: u64| {
        move |trial: usize| {
            let mut rng = ChaChaRng::seed_from_u64(base + trial as u64);
            let db = database(n, 4);
            let mut ir = InsecureStrawmanIr::setup(&db, SimServer::new());
            let (_, set) = ir.query_traced(query, &mut rng).unwrap();
            // The distinguishing event: is the *other* record absent?
            vec![u8::from(set.contains(&0))]
        }
    };
    let report = audit_views(20_000, 30, view(0, 0), view(3, 1 << 32));
    // Under Q1 (query 0), record 0 is always present; under Q2 it is absent
    // w.p. (n-1)/n. No finite epsilon covers a zero-probability event:
    let delta = report.delta_at(10.0);
    assert!(delta > 0.8, "strawman must leak catastrophically: δ̂ at ε = 10 is only {delta}");
}

/// DP-RAM: finite ε̂ on worst-case adjacent pairs, δ̂ ≈ 0 (pure DP), and
/// the op-flip pair (read vs write) is equally protected.
#[test]
fn dp_ram_audit_read_pair_and_op_pair() {
    let n = 4;
    let p = 0.5;
    let run = |queries: &'static [(usize, Op)], base: u64| {
        move |trial: usize| {
            let mut rng = ChaChaRng::seed_from_u64(base + trial as u64);
            let db = database(n, 4);
            let mut ram = DpRam::setup(
                DpRamConfig { n, stash_probability: p },
                &db,
                SimServer::new(),
                &mut rng,
            )
            .unwrap();
            let mut out = Vec::new();
            for &(i, op) in queries {
                let value = (op == Op::Write).then(|| vec![9u8; 4]);
                let (_, t) = ram.query_traced(i, op, value, &mut rng).unwrap();
                out.push(t.download as u8);
                out.push(t.overwrite as u8);
            }
            out
        }
    };

    // Read-vs-read adjacent pair.
    const Q1: &[(usize, Op)] = &[(0, Op::Read), (0, Op::Read)];
    const Q2: &[(usize, Op)] = &[(0, Op::Read), (1, Op::Read)];
    let report = audit_views(60_000, 40, run(Q1, 0), run(Q2, 1 << 40));
    let eps = report.epsilon_hat();
    let bound = DpRamConfig { n, stash_probability: p }.epsilon_upper_bound();
    assert!(eps > 0.0, "distinct queries must differ somewhat");
    assert!(eps < bound, "ε̂ = {eps} must sit below the proof bound {bound}");
    assert!(report.delta_at(bound) < 1e-6, "pure DP: no residual mass at the bound");

    // Read-vs-write adjacent pair (op hiding).
    const Q3: &[(usize, Op)] = &[(0, Op::Read)];
    const Q4: &[(usize, Op)] = &[(0, Op::Write)];
    // The transcripts are identically distributed (Lemma 6.2: the op never
    // affects the addresses), so the true ε is 0 and ε̂ is pure sampling
    // noise — view counts of ~60k/16 give log-ratio noise up to ~0.15.
    let report = audit_views(60_000, 40, run(Q3, 2 << 40), run(Q4, 3 << 40));
    assert!(
        report.epsilon_hat() < 0.2,
        "op flip must be (nearly) invisible: ε̂ = {}",
        report.epsilon_hat()
    );
}

/// Decoy uniformity at the core of every proof: conditioned on a decoy
/// download, the address is uniform. A skew here would silently break
/// every epsilon in the paper.
#[test]
fn dp_ram_decoy_addresses_are_uniform() {
    let n = 8;
    let mut counts = vec![0u32; n];
    let db = database(n, 4);
    let mut rng = ChaChaRng::seed_from_u64(77);
    let mut ram = DpRam::setup(
        DpRamConfig { n, stash_probability: 1.0 }, // always stash => always decoy
        &db,
        SimServer::new(),
        &mut rng,
    )
    .unwrap();
    let trials = 16_000;
    for _ in 0..trials {
        let (_, t) = ram.query_traced(3, Op::Read, None, &mut rng).unwrap();
        counts[t.download] += 1;
    }
    let expected = trials as f64 / n as f64;
    for (addr, &c) in counts.iter().enumerate() {
        let dev = (f64::from(c) - expected).abs() / expected;
        assert!(dev < 0.1, "decoy address {addr}: count {c}, deviation {dev:.3}");
    }
}
