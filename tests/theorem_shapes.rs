//! Integration tests asserting the *shapes* the paper's theorems predict,
//! measured across crates (theory formulas vs simulated structures).

use dp_storage::analysis::stats;
use dp_storage::crypto::ChaChaRng;
use dp_storage::hashing::classic::{max_load, one_choice_loads, two_choice_loads};
use dp_storage::hashing::forest::{ForestGeometry, ObliviousForest};
use dp_storage::hashing::theory::{beta_closed, i_star};

/// Theorem A.1 separation: at n = 2^15, two-choice max load must be under
/// half the one-choice max load on average.
#[test]
fn two_choice_separation_is_reproducible() {
    let n = 1 << 15;
    let mut ones = Vec::new();
    let mut twos = Vec::new();
    for seed in 0..5 {
        let mut rng = ChaChaRng::seed_from_u64(seed);
        ones.push(f64::from(max_load(&one_choice_loads(n, n, &mut rng))));
        twos.push(f64::from(max_load(&two_choice_loads(n, n, &mut rng))));
    }
    let one_mean = stats::mean(&ones);
    let two_mean = stats::mean(&twos);
    assert!(
        two_mean * 1.8 < one_mean,
        "two-choice {two_mean} not clearly below one-choice {one_mean}"
    );
    // And the absolute scale matches Θ(log log n): log2 log2 2^15 ≈ 3.9.
    assert!(two_mean <= 8.0);
}

/// Lemma 7.3 / Theorem 7.2: the forest's empirical filled-node counts are
/// dominated by a constant multiple of the β_i envelope, and the decay is
/// sharp (each level at most half the previous).
#[test]
fn forest_fill_decays_like_beta() {
    let n = 1 << 14;
    let geometry = ForestGeometry::recommended(n);
    let mut forest = ObliviousForest::new(geometry, b"beta-shape");
    for key in 0..n as u64 {
        forest.insert(key, Vec::new()).unwrap();
    }
    let filled = forest.filled_per_height();
    // Leaf level has many filled nodes; the decay must be strictly sharp.
    for h in 1..filled.len() {
        if filled[h - 1] >= 8 {
            assert!(
                filled[h] * 2 <= filled[h - 1],
                "fill counts must at least halve per level: {filled:?}"
            );
        }
    }
    // β_0 envelope sanity: the number of filled leaves is below c·β_0 for a
    // small constant (β's constants are loose in the safe direction).
    let beta0 = beta_closed(n as f64, 0);
    assert!((filled[0] as f64) < 40.0 * beta0, "filled leaves {} vs β_0 = {beta0}", filled[0]);
}

/// The i* height where β drops below Φ is Θ(log log n): it must grow by at
/// most 1 when n quadruples.
#[test]
fn i_star_grows_doubly_logarithmically() {
    let phi = |n: f64| n.log2() * n.log2();
    let mut prev = 0;
    for exp in [10u32, 12, 14, 16, 18, 20] {
        let n = (1u64 << exp) as f64;
        let i = i_star(n, phi(n)).unwrap_or(0);
        assert!(i >= prev, "i* must be non-decreasing");
        assert!(i - prev <= 1, "i* must grow very slowly: {prev} -> {i} at n = 2^{exp}");
        prev = i;
    }
    assert!(prev <= 6, "i* must stay tiny at n = 2^20");
}

/// Theorem 7.2 at scale: full load with zero failures across seeds, super
/// root under Φ(n).
#[test]
fn forest_full_load_never_fails_across_seeds() {
    let n = 1 << 12;
    let geometry = ForestGeometry::recommended(n);
    for seed in 0..8 {
        let mut forest = ObliviousForest::new(geometry, format!("s{seed}").as_bytes());
        for key in 0..n as u64 {
            forest
                .insert(key, Vec::new())
                .unwrap_or_else(|e| panic!("seed {seed}, key {key}: {e}"));
        }
        assert!(
            forest.super_root_load() <= geometry.super_root_capacity,
            "seed {seed}: super root {} over Φ = {}",
            forest.super_root_load(),
            geometry.super_root_capacity
        );
    }
}

/// The forest uses Θ(n) server cells — concretely, under 4n for every
/// recommended geometry across three orders of magnitude.
#[test]
fn forest_storage_is_linear() {
    for exp in [8u32, 12, 16, 20] {
        let n = 1usize << exp;
        let g = ForestGeometry::recommended(n);
        let cells = g.total_nodes();
        assert!(cells <= 4 * n, "n = 2^{exp}: {cells} cells is not O(n)");
        assert!(cells >= n, "must at least cover the buckets");
    }
}
