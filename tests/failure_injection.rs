//! Failure injection across crates: corrupted server state, active-server
//! attacks, and capacity exhaustion must all surface as *typed errors* —
//! never as silent wrong answers or panics.

use dp_storage::core::dp_kvs::{DpKvs, DpKvsConfig};
use dp_storage::core::dp_ram::{DpRam, DpRamConfig, DpRamError};
use dp_storage::core::hardened_ram::{HardenedDpRam, HardenedRamError, TamperDetection};
use dp_storage::crypto::merkle::MerkleTree;
use dp_storage::crypto::ChaChaRng;
use dp_storage::oram::{PathOram, PathOramConfig};
use dp_storage::server::{SimServer, VerifiedError, VerifiedServer};
use dp_storage::workloads::generators::database;

const N: usize = 64;
const BLOCK: usize = 32;

/// DP-RAM with a corrupted server cell: the integrity tag inside the
/// IND-CPA ciphertext rejects the cell instead of decrypting garbage.
#[test]
fn dp_ram_detects_corrupted_ciphertext() {
    let mut rng = ChaChaRng::seed_from_u64(1);
    let db = database(N, BLOCK);
    // p = 0 pins reads to their own address, so the corrupted cell is hit.
    let mut ram =
        DpRam::setup(DpRamConfig { n: N, stash_probability: 0.0 }, &db, SimServer::new(), &mut rng)
            .unwrap();

    let cell = ram.server_mut().read(9).unwrap();
    let mut bad = cell;
    let mid = bad.len() / 2;
    bad[mid] ^= 0x01;
    ram.server_mut().write(9, bad).unwrap();

    match ram.read(9, &mut rng) {
        Err(DpRamError::Crypto(_)) => {}
        other => panic!("corruption must be a crypto error, got {other:?}"),
    }
}

/// Truncated cells are malformed, not a panic.
#[test]
fn dp_ram_rejects_truncated_cell() {
    let mut rng = ChaChaRng::seed_from_u64(2);
    let db = database(N, BLOCK);
    let mut ram =
        DpRam::setup(DpRamConfig { n: N, stash_probability: 0.0 }, &db, SimServer::new(), &mut rng)
            .unwrap();
    ram.server_mut().write(3, vec![0u8; 2]).unwrap();
    assert!(matches!(ram.read(3, &mut rng), Err(DpRamError::Crypto(_))));
}

/// Path ORAM with a corrupted bucket: typed storage error.
#[test]
fn path_oram_detects_corrupted_bucket() {
    let mut rng = ChaChaRng::seed_from_u64(3);
    let db = database(N, BLOCK);
    let mut oram =
        PathOram::setup(PathOramConfig::recommended(N, BLOCK), &db, SimServer::new(), &mut rng);
    // Corrupt the root bucket — every path includes it.
    let cell = oram.server_mut().read(0).unwrap();
    let mut bad = cell;
    bad[10] ^= 0xFF;
    oram.server_mut().write(0, bad).unwrap();
    assert!(oram.read(0, &mut rng).is_err());
}

/// DP-KVS with a corrupted node cell: typed error from the bucket RAM.
#[test]
fn dp_kvs_detects_corrupted_node() {
    let mut rng = ChaChaRng::seed_from_u64(4);
    let mut kvs = DpKvs::setup(DpKvsConfig::recommended(N, 8), SimServer::new(), &mut rng).unwrap();
    kvs.put(42, vec![7u8; 8], &mut rng).unwrap();
    // Corrupt every server cell: whatever path the next get touches fails.
    let capacity = kvs.server_mut().capacity();
    for addr in 0..capacity {
        let cell = kvs.server_mut().read(addr).unwrap();
        let mut bad = cell;
        bad[0] ^= 1;
        kvs.server_mut().write(addr, bad).unwrap();
    }
    assert!(kvs.get(42, &mut rng).is_err(), "corrupted nodes must not decrypt");
}

/// The verified server catches an adversary that rewrites both the cells
/// and the (untrusted) Merkle tree.
#[test]
fn verified_server_defeats_tree_rewriting_adversary() {
    let cells: Vec<Vec<u8>> = (0..16).map(|i| vec![i as u8; 8]).collect();
    let mut server = VerifiedServer::init(cells.clone());

    let mut forged = cells;
    forged[11] = vec![0xEE; 8];
    server
        .adversary_cells_mut()
        .write(11, forged[11].clone())
        .unwrap();
    server.adversary_replace_tree(MerkleTree::build(&forged));

    assert_eq!(server.read(11), Err(VerifiedError::IntegrityViolation { addr: 11 }));
    // With the whole (untrusted) tree forged, proofs for untouched cells
    // no longer chain to the trusted root either — conservative rejection
    // is the correct behavior, not a false negative.
    assert_eq!(server.read(3), Err(VerifiedError::IntegrityViolation { addr: 3 }));
}

/// Hardened DP-RAM: all three active attacks produce `Tampering` with the
/// detecting layer identified; honest operation continues unaffected on a
/// fresh instance.
#[test]
fn hardened_ram_attack_matrix() {
    let db = database(N, BLOCK);
    let config = DpRamConfig { n: N, stash_probability: 0.0 };

    // Corruption.
    let mut rng = ChaChaRng::seed_from_u64(5);
    let mut ram = HardenedDpRam::setup(config, &db, &mut rng).unwrap();
    let cell = ram.server_mut().adversary_cells_mut().read(7).unwrap();
    let mut bad = cell;
    bad[20] ^= 2;
    ram.server_mut().adversary_cells_mut().write(7, bad).unwrap();
    assert!(matches!(
        ram.read(7, &mut rng),
        Err(HardenedRamError::Tampering { addr: 7, detected_by: TamperDetection::MerkleRoot })
    ));

    // Swap.
    let mut rng = ChaChaRng::seed_from_u64(6);
    let mut ram = HardenedDpRam::setup(config, &db, &mut rng).unwrap();
    let a = ram.server_mut().adversary_cells_mut().read(1).unwrap();
    let b = ram.server_mut().adversary_cells_mut().read(2).unwrap();
    ram.server_mut().adversary_cells_mut().write(1, b).unwrap();
    ram.server_mut().adversary_cells_mut().write(2, a).unwrap();
    assert!(matches!(ram.read(1, &mut rng), Err(HardenedRamError::Tampering { addr: 1, .. })));

    // Rollback.
    let mut rng = ChaChaRng::seed_from_u64(7);
    let mut ram = HardenedDpRam::setup(config, &db, &mut rng).unwrap();
    let stale = ram.server_mut().adversary_cells_mut().read(4).unwrap();
    ram.write(4, vec![0xAB; BLOCK], &mut rng).unwrap();
    ram.server_mut().adversary_cells_mut().write(4, stale).unwrap();
    assert!(matches!(ram.read(4, &mut rng), Err(HardenedRamError::Tampering { addr: 4, .. })));
}

/// After a detected attack the client state is still usable for other
/// addresses (errors are per-access, not poisoning).
#[test]
fn detection_does_not_poison_other_addresses() {
    let db = database(N, BLOCK);
    let mut rng = ChaChaRng::seed_from_u64(8);
    let mut ram =
        HardenedDpRam::setup(DpRamConfig { n: N, stash_probability: 0.0 }, &db, &mut rng).unwrap();
    let cell = ram.server_mut().adversary_cells_mut().read(30).unwrap();
    let mut bad = cell;
    bad[15] ^= 4;
    ram.server_mut().adversary_cells_mut().write(30, bad).unwrap();
    assert!(ram.read(30, &mut rng).is_err());
    for i in [0usize, 5, 29, 31, 63] {
        assert_eq!(
            ram.read(i, &mut rng).unwrap(),
            db[i],
            "untampered address {i} must still read correctly"
        );
    }
}
